//! Cross-validation evaluation of configurations at a budget.
//!
//! [`CvEvaluator`] is the single code path both vanilla and enhanced
//! pipelines run through: build folds for the budget (per the pipeline's
//! [`hpo_sampling::FoldStrategy`]), train one MLP per fold, score the
//! held-out fold, and
//! reduce the fold scores with the pipeline's [`hpo_metrics::EvalMetric`].

use crate::cancel::CancelToken;
use crate::continuation::{params_fingerprint, ContinuationCache, SnapshotSet};
use crate::exec::{FailurePolicy, TrialJob};
use crate::obs::{self, Counter, Histogram, ScopedTimer, LATENCY_BUCKETS};
use crate::parallel::{current_fold_budget, FoldBudget};
use crate::pipeline::Pipeline;
use hpo_data::dataset::{Dataset, Task};
use hpo_data::rng::{derive_seed, rng_from_seed};
use hpo_metrics::classification::{accuracy, weighted_f1};
use hpo_metrics::regression::r2;
use hpo_metrics::FoldScores;
use hpo_models::estimator::Estimator;
use hpo_models::mlp::{FitState, MlpClassifier, MlpParams, MlpRegressor};
use hpo_sampling::groups::{build_grouping, Grouping};
use hpo_sampling::kfold::train_indices_for;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Entry cap for the per-evaluator fold cache; on overflow the cache is
/// cleared wholesale (rebuilds are cheap, bookkeeping an LRU is not).
const FOLD_CACHE_CAP: usize = 256;

/// Which validation score the folds produce (and the experiments report).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoreKind {
    /// Plain accuracy (the paper's balanced classification datasets).
    Accuracy,
    /// Support-weighted F1 (the paper's imbalanced datasets).
    WeightedF1,
    /// R² (the paper's regression datasets).
    R2,
}

impl ScoreKind {
    /// The paper's convention: F1 for imbalanced classification (minority
    /// class below 25% of a balanced share), accuracy otherwise, R² for
    /// regression.
    pub fn for_dataset(data: &Dataset) -> ScoreKind {
        match data.task() {
            Task::Regression => ScoreKind::R2,
            task => {
                let counts = data.class_counts();
                let k = task.n_classes().unwrap_or(2);
                let balanced_share = data.n_instances() as f64 / k as f64;
                let min_count = counts.iter().copied().min().unwrap_or(0) as f64;
                if min_count < 0.25 * balanced_share {
                    ScoreKind::WeightedF1
                } else {
                    ScoreKind::Accuracy
                }
            }
        }
    }

    /// Computes the score of predictions against the truth.
    pub fn compute(&self, y_true: &[f64], y_pred: &[f64], n_classes: usize) -> f64 {
        match self {
            ScoreKind::Accuracy => accuracy(y_true, y_pred),
            ScoreKind::WeightedF1 => weighted_f1(y_true, y_pred, n_classes),
            ScoreKind::R2 => r2(y_true, y_pred),
        }
    }

    /// The score recorded for a fold whose model failed to fit (empty
    /// predictions) or whose fold geometry was degenerate. Classification
    /// scores bottom out at 0.0 naturally, but R² is unbounded below and its
    /// fold scores are clamped to [-1, 1]: a failed regression fold scoring
    /// 0.0 would rank *above* a working configuration at negative R², so it
    /// scores the clamp floor −1.0 instead (DESIGN.md "Failure semantics").
    pub fn failed_fold_score(&self) -> f64 {
        match self {
            ScoreKind::R2 => -1.0,
            ScoreKind::Accuracy | ScoreKind::WeightedF1 => 0.0,
        }
    }

    /// Short label for tables.
    pub fn name(&self) -> &'static str {
        match self {
            ScoreKind::Accuracy => "acc",
            ScoreKind::WeightedF1 => "f1",
            ScoreKind::R2 => "r2",
        }
    }
}

/// How one trial evaluation terminated.
///
/// Everything except [`TrialStatus::Completed`] is a *failure* outcome: the
/// score carried by the trial is then the failure policy's imputed
/// worst-score, so bandit optimizers demote the configuration
/// deterministically instead of crashing (see `exec` module docs and
/// DESIGN.md "Failure semantics").
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrialStatus {
    /// The evaluation ran to completion with a finite score.
    #[default]
    Completed,
    /// The score (or a fold score) was non-finite — e.g. a diverging MLP —
    /// and retries were exhausted.
    Diverged,
    /// The trial exceeded the policy's wall-clock or cost deadline.
    TimedOut,
    /// The evaluation panicked on every attempt.
    Failed {
        /// Number of attempts made before giving up.
        attempts: u32,
    },
    /// The trial was skipped because the run's [`crate::cancel::CancelToken`]
    /// fired before (or while) its batch executed. Cancelled outcomes are
    /// never written to checkpoints: a resumed run re-evaluates the trial
    /// and converges to the uncancelled result.
    Cancelled,
}

impl TrialStatus {
    /// Whether the trial completed normally.
    pub fn is_ok(&self) -> bool {
        matches!(self, TrialStatus::Completed)
    }
}

/// Result of evaluating one configuration at one budget.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Per-fold validation scores and the subset percentage γ.
    pub fold_scores: FoldScores,
    /// The pipeline-metric score used for halving decisions.
    pub score: f64,
    /// Deterministic training cost across all folds.
    pub cost_units: u64,
    /// Wall-clock seconds the evaluation took.
    pub wall_seconds: f64,
    /// How the evaluation terminated. Defaults to `Completed` so histories
    /// persisted before failure tracking still deserialize.
    #[serde(default)]
    pub status: TrialStatus,
    /// The (clamped) budget of the snapshot this evaluation warm-started
    /// from, or `None` for a cold evaluation. Skipped when absent, so
    /// cold-mode checkpoints and journals serialize byte-identically to the
    /// pre-warm-start format.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub resumed_from: Option<usize>,
}

impl EvalOutcome {
    /// A synthetic outcome for a trial that panicked on every attempt: no
    /// folds, the policy's imputed score, `Failed` status.
    pub fn failed(attempts: u32, imputed_score: f64, gamma_pct: f64, wall_seconds: f64) -> Self {
        EvalOutcome {
            fold_scores: FoldScores::new(Vec::new(), gamma_pct),
            score: imputed_score,
            cost_units: 0,
            wall_seconds,
            status: TrialStatus::Failed { attempts },
            resumed_from: None,
        }
    }

    /// A synthetic outcome for a trial skipped by cancellation: no folds,
    /// the policy's imputed score (so it can never outrank a real trial if
    /// it leaks into a ranking), zero cost, `Cancelled` status.
    pub fn cancelled(imputed_score: f64, gamma_pct: f64) -> Self {
        EvalOutcome {
            fold_scores: FoldScores::new(Vec::new(), gamma_pct),
            score: imputed_score,
            cost_units: 0,
            wall_seconds: 0.0,
            status: TrialStatus::Cancelled,
            resumed_from: None,
        }
    }
}

/// The cross-validation evaluator (see module docs).
pub struct CvEvaluator<'a> {
    train: &'a Dataset,
    pipeline: Pipeline,
    grouping: Option<Grouping>,
    /// Stratification labels: class indices for classification, a single
    /// category for regression (stratified folding degrades to random).
    strat_labels: Vec<usize>,
    n_strat_categories: usize,
    score_kind: ScoreKind,
    base_params: MlpParams,
    /// Total budget `B` (= training instances, as in the paper).
    total_budget: usize,
    seed: u64,
    /// Retry/deadline/imputation rules for failed trials.
    policy: FailurePolicy,
    /// Cooperative cancellation flag for the run this evaluator serves.
    /// Inert by default; the wrappers and optimizer loops poll it through
    /// [`crate::exec::TrialEvaluator::cancel_token`].
    cancel: CancelToken,
    /// Warm-start snapshot store. `None` (the default) evaluates every trial
    /// cold; with a cache attached, jobs carrying a continuation key resume
    /// their fold models from the configuration's previous (smaller-budget)
    /// snapshots and deposit fresh snapshots for the next rung.
    continuation: Option<Arc<ContinuationCache>>,
    /// Fold constructions keyed by (clamped budget, stream). Folds are a
    /// pure function of that key (plus per-evaluator state), so identical
    /// constructions — every candidate of a shared-folds rung, or a rung
    /// re-visited at the same budget — are built once and shared. Shared
    /// across evaluation threads; entries are immutable once inserted.
    fold_cache: Mutex<HashMap<(usize, u64), Arc<Vec<Vec<usize>>>>>,
    /// Cap on threads (including the trial's own) one MLP trial may spread
    /// its CV folds across. 1 (the default) keeps evaluation sequential.
    /// Under a [`crate::parallel::ParallelEvaluator`] the cap is further
    /// limited by the batch's idle-worker [`FoldBudget`], so the pool's
    /// total thread count never exceeds its configured size. Fold results
    /// are committed in fold order either way, so every setting produces
    /// bit-identical outcomes, journals and checkpoints.
    fold_workers: usize,
}

impl<'a> CvEvaluator<'a> {
    /// Builds the evaluator, running Operation 1 up front when the pipeline
    /// asks for grouping (the paper's method clusters once before the HPO
    /// loop starts).
    pub fn new(train: &'a Dataset, pipeline: Pipeline, base_params: MlpParams, seed: u64) -> Self {
        let grouping = pipeline.grouping.as_ref().map(|cfg| {
            let mut cfg = cfg.clone();
            cfg.seed = derive_seed(seed, 0x6600);
            // Operation 1 (clustering) runs once per evaluator; its latency
            // is a standing question for the "overhead of the enhanced
            // pipeline" analysis, so it gets its own histogram.
            let _timer = ScopedTimer::start(
                obs::global_metrics().histogram("hpo_grouping_seconds", LATENCY_BUCKETS),
            );
            build_grouping(train, &cfg)
        });
        let (strat_labels, n_strat_categories) = match train.task() {
            Task::Regression => (vec![0usize; train.n_instances()], 1),
            _ => {
                let labels: Vec<usize> = train.y().iter().map(|&y| y as usize).collect();
                let k = train.task().n_classes().unwrap_or(1);
                (labels, k)
            }
        };
        let score_kind = ScoreKind::for_dataset(train);
        CvEvaluator {
            train,
            pipeline,
            grouping,
            strat_labels,
            n_strat_categories,
            score_kind,
            base_params,
            total_budget: train.n_instances(),
            seed,
            policy: FailurePolicy::default(),
            cancel: CancelToken::none(),
            continuation: None,
            fold_cache: Mutex::new(HashMap::new()),
            fold_workers: 1,
        }
    }

    /// Sets the per-trial fold-parallelism cap (builder style; clamped to
    /// ≥ 1). See the `fold_workers` field docs for the determinism contract.
    pub fn with_fold_workers(mut self, fold_workers: usize) -> Self {
        self.fold_workers = fold_workers.max(1);
        self
    }

    /// The per-trial fold-parallelism cap.
    pub fn fold_workers(&self) -> usize {
        self.fold_workers
    }

    /// Replaces the failure policy (builder style).
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a cooperative cancellation token (builder style). The
    /// default token is inert, so uncancellable runs pay one branch per
    /// poll.
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The cancellation token this evaluator polls.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Attaches a warm-start snapshot cache (builder style). Jobs without a
    /// continuation key still evaluate cold.
    pub fn with_continuation(mut self, cache: Arc<ContinuationCache>) -> Self {
        self.continuation = Some(cache);
        self
    }

    /// The attached warm-start cache, if any.
    pub fn continuation_cache(&self) -> Option<&Arc<ContinuationCache>> {
        self.continuation.as_ref()
    }

    /// The retry/deadline/imputation rules this evaluator runs under.
    pub fn failure_policy(&self) -> &FailurePolicy {
        &self.policy
    }

    /// The training dataset under evaluation.
    pub fn train_data(&self) -> &Dataset {
        self.train
    }

    /// Total budget `B` (training instances).
    pub fn total_budget(&self) -> usize {
        self.total_budget
    }

    /// The score kind the folds produce.
    pub fn score_kind(&self) -> ScoreKind {
        self.score_kind
    }

    /// The pipeline this evaluator runs.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The base hyperparameters that uncovered dimensions fall back to.
    pub fn base_params(&self) -> &MlpParams {
        &self.base_params
    }

    /// The Operation 1 grouping, when the pipeline built one.
    pub fn grouping(&self) -> Option<&Grouping> {
        self.grouping.as_ref()
    }

    /// Derives the fold-sampling stream for a (rung, candidate) pair,
    /// honoring the pipeline's `per_config_folds` setting: with
    /// per-configuration draws every candidate gets its own stream (the
    /// paper's Algorithm 1); with shared draws the candidate index is
    /// ignored, so a whole rung is judged on one fold set (scikit-learn
    /// semantics).
    pub fn fold_stream(&self, base: u64, rung: u64, candidate: u64) -> u64 {
        let cand = if self.pipeline.per_config_folds {
            candidate & 0xFFFF_FFFF
        } else {
            0
        };
        derive_seed(base, (rung << 32) | cand)
    }

    /// Evaluates `params` with `budget` instances. `stream` decorrelates the
    /// fold sampling across configurations and rungs. Always a cold
    /// evaluation; warm-start runs route through [`CvEvaluator::evaluate_job`].
    pub fn evaluate(&self, params: &MlpParams, budget: usize, stream: u64) -> EvalOutcome {
        self.evaluate_mlp(params, budget, stream, None)
    }

    /// Evaluates one [`TrialJob`], warm-starting from the continuation cache
    /// when both a cache is attached and the job carries a continuation key.
    pub fn evaluate_job(&self, job: &TrialJob) -> EvalOutcome {
        let warm = match (&self.continuation, job.cont) {
            (Some(cache), Some(key)) => Some((Arc::clone(cache), key)),
            _ => None,
        };
        self.evaluate_mlp(&job.params, job.budget, job.stream, warm)
    }

    /// The shared MLP evaluation path behind [`CvEvaluator::evaluate`] and
    /// [`CvEvaluator::evaluate_job`]. With `warm` set, each fold model
    /// resumes from the configuration's largest snapshot at or below this
    /// budget (training only the incremental epoch share of the budget
    /// step), and the fitted fold models are snapshotted for the next rung.
    ///
    /// When the fold-parallelism cap and the installed [`FoldBudget`] allow
    /// it, the CV folds are fanned across scoped threads; results are
    /// committed in fold order, so the sequential and parallel paths are
    /// bit-identical (see `fold_workers`).
    fn evaluate_mlp(
        &self,
        params: &MlpParams,
        budget: usize,
        stream: u64,
        warm: Option<(Arc<ContinuationCache>, u64)>,
    ) -> EvalOutcome {
        // Handles resolved once per trial, not per fold: the per-fold hot
        // path then costs one `Instant` pair and a few relaxed atomics.
        let fit_seconds = obs::global_metrics().histogram("hpo_model_fit_seconds", LATENCY_BUCKETS);
        let epochs_total = obs::global_metrics().counter("hpo_model_epochs_total");
        // Clamp exactly as `evaluate_fn` does, so snapshot budgets line up
        // with the budgets the folds are actually built at.
        let clamped = self.clamp_budget(budget);
        let fingerprint = warm.as_ref().map(|_| params_fingerprint(params));
        let prior = match (&warm, fingerprint) {
            (Some((cache, key)), Some(fp)) => cache.lookup(*key, fp, clamped),
            _ => None,
        };
        // Incremental epochs for the budget step ΔB/B, floored at 1 so a
        // clamped repeat budget still gets a top-up rather than a no-op.
        let epoch_cap = prior.as_ref().map(|p| {
            let step = clamped.saturating_sub(p.budget) as f64 / clamped.max(1) as f64;
            ((params.max_iter as f64 * step).ceil() as usize).max(1)
        });
        let capture = warm.is_some();
        let mut snapshots: Vec<Option<FitState>> = Vec::new();
        let mut resumed = false;
        let mut diverged_folds = 0usize;
        let mut failed_folds = 0usize;
        let claim = self.claim_fold_threads();
        let mut out = if claim.granted > 0 {
            let folded = self.evaluate_mlp_parallel(
                params,
                budget,
                stream,
                prior.as_deref(),
                epoch_cap,
                capture,
                claim.granted,
                &fit_seconds,
                &epochs_total,
            );
            snapshots = folded.snapshots;
            resumed = folded.resumed;
            diverged_folds = folded.diverged_folds;
            failed_folds = folded.failed_folds;
            folded.outcome
        } else {
            self.evaluate_fn(budget, stream, |fold, train_sub, val_sub| {
                let snap = prior
                    .as_ref()
                    .and_then(|p| p.folds.get(fold))
                    .and_then(Option::as_ref);
                let fit = self.fit_fold(
                    params,
                    stream,
                    fold,
                    snap,
                    epoch_cap,
                    capture,
                    train_sub,
                    val_sub,
                    &fit_seconds,
                    &epochs_total,
                );
                resumed |= fit.resumed;
                diverged_folds += fit.diverged as usize;
                failed_folds += fit.failed as usize;
                if capture {
                    if snapshots.len() <= fold {
                        snapshots.resize(fold + 1, None);
                    }
                    snapshots[fold] = fit.snapshot;
                }
                (fit.preds, fit.cost)
            })
        };
        drop(claim);
        // A majority of diverged *or unfittable* folds means the
        // configuration is unstable at this budget, not merely unlucky: flag
        // the whole trial so the failure policy can impute and demote it.
        let n_folds = out.fold_scores.folds.len();
        if out.status == TrialStatus::Completed
            && n_folds > 0
            && 2 * (diverged_folds + failed_folds) > n_folds
        {
            out.status = TrialStatus::Diverged;
        }
        if resumed {
            out.resumed_from = prior.as_ref().map(|p| p.budget);
        }
        // Deposit snapshots for the next rung only from a healthy trial: a
        // timed-out or demoted evaluation left partial or suspect models.
        if out.status == TrialStatus::Completed {
            if let (Some((cache, key)), Some(fp)) = (&warm, fingerprint) {
                cache.insert(
                    *key,
                    SnapshotSet {
                        fingerprint: fp,
                        budget: clamped,
                        folds: std::mem::take(&mut snapshots),
                    },
                );
            }
        }
        out
    }

    /// Model-agnostic evaluation: the pipeline builds the folds, the caller
    /// supplies training + prediction.
    ///
    /// `fit_predict(fold_index, train_subset, val_subset)` must return the
    /// predictions for `val_subset` (empty to signal a failed fit, which
    /// scores [`ScoreKind::failed_fold_score`]) and a deterministic cost
    /// figure. This is how non-MLP models
    /// (trees, forests, anything implementing
    /// [`hpo_models::estimator::Estimator`]) run through the paper's
    /// enhanced cross-validation — see `examples/tree_tuning.rs`.
    pub fn evaluate_fn(
        &self,
        budget: usize,
        stream: u64,
        mut fit_predict: impl FnMut(usize, &Dataset, &Dataset) -> (Vec<f64>, u64),
    ) -> EvalOutcome {
        let start = Instant::now();
        // Each evaluation owns the span stash: folds from a previous attempt
        // (retry loop) or a previous bare-evaluator call must not leak in.
        let _ = obs::take_span_stash();
        let budget = self.clamp_budget(budget);
        let folds = self.build_folds(budget, stream);

        let mut scores = Vec::with_capacity(folds.len());
        let mut cost_units = 0u64;
        let mut status = TrialStatus::Completed;
        for v in 0..folds.len() {
            // Mid-evaluation deadlines: stop between folds once the policy's
            // wall-clock or cost budget is spent. The partial fold scores are
            // kept for diagnostics; the failure policy imputes the score.
            if self.deadline_exceeded(&start, cost_units) {
                status = TrialStatus::TimedOut;
                break;
            }
            let train_idx = train_indices_for(&folds, v);
            let val_idx = &folds[v];
            if train_idx.len() < 2 || val_idx.is_empty() {
                scores.push(self.score_kind.failed_fold_score());
                continue;
            }
            let train_sub = self.train.select(&train_idx);
            let val_sub = self.train.select(val_idx);
            let fold_started = Instant::now();
            let (preds, cost) = fit_predict(v, &train_sub, &val_sub);
            obs::record_span(
                obs::SpanPhase::Fold,
                fold_started.elapsed().as_micros() as u64,
                Some(format!("fold={v}")),
            );
            cost_units += cost;
            scores.push(self.fold_score(&preds, &val_sub));
        }
        self.finish_outcome(scores, cost_units, status, budget, &start)
    }

    /// Clamps a requested budget into the evaluable range: at least the
    /// fold count (and 2), at most the dataset size.
    fn clamp_budget(&self, budget: usize) -> usize {
        let k = self.pipeline.fold_strategy.n_folds();
        budget.clamp(k.max(2), self.total_budget.max(k))
    }

    /// The fold construction for (clamped `budget`, `stream`), served from
    /// the per-evaluator cache when possible. On overflow the cache is
    /// cleared wholesale — rebuilds are cheap, bookkeeping an LRU is not —
    /// and the clear is counted in `hpo_fold_cache_evictions_total`, so a
    /// run churning through more than [`FOLD_CACHE_CAP`] constructions shows
    /// up in metrics instead of silently rebuilding every fold set.
    fn build_folds(&self, budget: usize, stream: u64) -> Arc<Vec<Vec<usize>>> {
        let key = (budget, stream);
        let cached = self.fold_cache.lock().get(&key).cloned();
        match cached {
            Some(folds) => folds,
            None => {
                // Build outside the lock: a concurrent miss on the same key
                // builds twice but both results are bit-identical, and the
                // pool's workers never serialize on fold construction.
                let mut rng = rng_from_seed(derive_seed(self.seed, stream));
                let built = {
                    let _timer = ScopedTimer::start(
                        obs::global_metrics().histogram("hpo_fold_build_seconds", LATENCY_BUCKETS),
                    );
                    Arc::new(self.pipeline.fold_strategy.build(
                        self.train.n_instances(),
                        &self.strat_labels,
                        self.n_strat_categories,
                        self.grouping.as_ref(),
                        budget,
                        &mut rng,
                    ))
                };
                let mut cache = self.fold_cache.lock();
                if cache.len() >= FOLD_CACHE_CAP {
                    obs::global_metrics()
                        .counter("hpo_fold_cache_evictions_total")
                        .inc();
                    cache.clear();
                }
                cache.insert(key, Arc::clone(&built));
                built
            }
        }
    }

    /// Whether the policy's wall-clock or cost deadline is spent.
    fn deadline_exceeded(&self, start: &Instant, cost_units: u64) -> bool {
        self.policy
            .trial_timeout_secs
            .is_some_and(|limit| start.elapsed().as_secs_f64() > limit)
            || self
                .policy
                .max_cost_units
                .is_some_and(|max| cost_units > max)
    }

    /// Scores one fold's predictions against its validation subset.
    fn fold_score(&self, preds: &[f64], val_sub: &Dataset) -> f64 {
        let k_classes = self.train.task().n_classes().unwrap_or(0);
        let score = if preds.is_empty() {
            // A failed or diverged fit scores the metric's floor, never
            // 0.0 blindly: under R² that would outrank real fits with
            // negative scores (see ScoreKind::failed_fold_score).
            self.score_kind.failed_fold_score()
        } else {
            self.score_kind.compute(val_sub.y(), preds, k_classes)
        };
        // Classification scores are bounded in [0,1]; R² is unbounded
        // below, and an unbounded fold score would hand diverging
        // configurations an arbitrarily large variance bonus under
        // Eq. 3. Clamp regression fold scores to [-1, 1] for metric
        // purposes — a config at R² = −5 is no more interesting than one
        // at −1 (DESIGN.md §4.5).
        if self.score_kind == ScoreKind::R2 {
            score.clamp(-1.0, 1.0)
        } else {
            score
        }
    }

    /// Assembles the [`EvalOutcome`] both fold paths end with: γ, the
    /// pipeline-metric reduction over the fold scores, and the wall clock.
    fn finish_outcome(
        &self,
        scores: Vec<f64>,
        cost_units: u64,
        status: TrialStatus,
        budget: usize,
        start: &Instant,
    ) -> EvalOutcome {
        let gamma_pct = 100.0 * budget as f64 / self.total_budget.max(1) as f64;
        let fold_scores = FoldScores::new(scores, gamma_pct);
        let score = fold_scores.score(&self.pipeline.metric);
        EvalOutcome {
            fold_scores,
            score,
            cost_units,
            wall_seconds: start.elapsed().as_secs_f64(),
            status,
            resumed_from: None,
        }
    }

    /// Claims extra threads for this trial's folds: bounded by the
    /// `fold_workers` cap and the fold count, and — when running under a
    /// [`crate::parallel::ParallelEvaluator`] — by the batch's idle-worker
    /// [`FoldBudget`], so pool capacity is borrowed, never exceeded. A
    /// standalone evaluator (no budget installed) gets the cap outright.
    fn claim_fold_threads(&self) -> FoldClaim {
        let k = self.pipeline.fold_strategy.n_folds();
        let want = self.fold_workers.saturating_sub(1).min(k.saturating_sub(1));
        if want == 0 {
            return FoldClaim {
                budget: None,
                granted: 0,
            };
        }
        match current_fold_budget() {
            Some(budget) => {
                let granted = budget.claim(want);
                FoldClaim {
                    budget: Some(budget),
                    granted,
                }
            }
            None => FoldClaim {
                budget: None,
                granted: want,
            },
        }
    }

    /// Fits one fold's model (cold, or warm from `snap` with `epoch_cap`
    /// incremental epochs) and predicts its validation subset. Independent
    /// of commit order — safe to call from fold worker threads; its only
    /// side effects are the global fit metrics, which are thread-safe.
    #[allow(clippy::too_many_arguments)]
    fn fit_fold(
        &self,
        params: &MlpParams,
        stream: u64,
        fold: usize,
        snap: Option<&FitState>,
        epoch_cap: Option<usize>,
        capture: bool,
        train_sub: &Dataset,
        val_sub: &Dataset,
        fit_seconds: &Arc<Histogram>,
        epochs_total: &Arc<Counter>,
    ) -> FoldFit {
        let mut fold_params = params.clone();
        fold_params.seed = derive_seed(self.seed, stream ^ (fold as u64) << 32);
        let resumed = snap.is_some() && epoch_cap.is_some();
        // The regression and classification arms are textually identical;
        // the macro instantiates the body once per concrete model type.
        macro_rules! fit_with {
            ($model:expr) => {{
                let mut model = $model;
                let fit = {
                    let _timer = ScopedTimer::start(Arc::clone(fit_seconds));
                    match (snap, epoch_cap) {
                        (Some(state), Some(cap)) => model.warm_fit(train_sub, state, cap),
                        _ => model.fit(train_sub),
                    }
                };
                match fit {
                    Ok(report) if report.diverged => {
                        epochs_total.add(report.epochs as u64);
                        FoldFit {
                            preds: Vec::new(),
                            cost: report.cost_units,
                            snapshot: None,
                            resumed,
                            diverged: true,
                            failed: false,
                        }
                    }
                    Ok(report) => {
                        epochs_total.add(report.epochs as u64);
                        FoldFit {
                            preds: model.predict(val_sub.x()),
                            cost: report.cost_units,
                            snapshot: if capture { model.fit_state() } else { None },
                            resumed,
                            diverged: false,
                            failed: false,
                        }
                    }
                    Err(_) => FoldFit {
                        preds: Vec::new(),
                        cost: 0,
                        snapshot: None,
                        resumed,
                        diverged: false,
                        failed: true,
                    },
                }
            }};
        }
        match self.train.task() {
            Task::Regression => fit_with!(MlpRegressor::new(fold_params)),
            _ => fit_with!(MlpClassifier::new(fold_params)),
        }
    }

    /// Computes one fold end to end on whichever thread claims it: the
    /// degenerate-geometry check, subset selection, fit and scoring, all
    /// deterministic functions of the fold index.
    #[allow(clippy::too_many_arguments)]
    fn run_fold(
        &self,
        v: usize,
        folds: &Vec<Vec<usize>>,
        params: &MlpParams,
        stream: u64,
        prior: Option<&SnapshotSet>,
        epoch_cap: Option<usize>,
        capture: bool,
        fit_seconds: &Arc<Histogram>,
        epochs_total: &Arc<Counter>,
    ) -> FoldSlot {
        let train_idx = train_indices_for(folds, v);
        let val_idx = &folds[v];
        if train_idx.len() < 2 || val_idx.is_empty() {
            return FoldSlot::Degenerate;
        }
        let train_sub = self.train.select(&train_idx);
        let val_sub = self.train.select(val_idx);
        let snap = prior.and_then(|p| p.folds.get(v)).and_then(Option::as_ref);
        let fold_started = Instant::now();
        let fit = self.fit_fold(
            params,
            stream,
            v,
            snap,
            epoch_cap,
            capture,
            &train_sub,
            &val_sub,
            fit_seconds,
            epochs_total,
        );
        let dur_us = fold_started.elapsed().as_micros() as u64;
        FoldSlot::Fit {
            score: self.fold_score(&fit.preds, &val_sub),
            cost: fit.cost,
            snapshot: fit.snapshot,
            resumed: fit.resumed,
            diverged: fit.diverged,
            failed: fit.failed,
            dur_us,
        }
    }

    /// The fold-parallel twin of the sequential loop in
    /// [`CvEvaluator::evaluate_fn`]: `extra + 1` threads (the trial's own
    /// plus `extra` claimed from the pool) race through the folds, then the
    /// trial thread commits the results **in fold order** — scores, costs,
    /// deadline checks, snapshots and Fold spans land exactly as the
    /// sequential loop produces them, which keeps journals, checkpoints and
    /// warm-start snapshots byte-identical at any thread count.
    ///
    /// The one intentional divergence: deadlines are enforced at commit
    /// time, so folds computed past a wall-clock deadline are discarded
    /// rather than never started (the cost deadline stays exactly
    /// deterministic; the wall-clock one is timing-dependent in both paths).
    #[allow(clippy::too_many_arguments)]
    fn evaluate_mlp_parallel(
        &self,
        params: &MlpParams,
        budget: usize,
        stream: u64,
        prior: Option<&SnapshotSet>,
        epoch_cap: Option<usize>,
        capture: bool,
        extra: usize,
        fit_seconds: &Arc<Histogram>,
        epochs_total: &Arc<Counter>,
    ) -> ParallelFoldResult {
        let start = Instant::now();
        // Each evaluation owns the span stash, exactly as `evaluate_fn`.
        let _ = obs::take_span_stash();
        let budget = self.clamp_budget(budget);
        let folds = self.build_folds(budget, stream);
        let n = folds.len();

        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<FoldSlot>> = (0..n).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            let work = || {
                let mut local: Vec<(usize, FoldSlot)> = Vec::new();
                loop {
                    let v = cursor.fetch_add(1, Ordering::Relaxed);
                    if v >= n {
                        break;
                    }
                    let slot = self.run_fold(
                        v,
                        &folds,
                        params,
                        stream,
                        prior,
                        epoch_cap,
                        capture,
                        fit_seconds,
                        epochs_total,
                    );
                    local.push((v, slot));
                }
                local
            };
            let handles: Vec<_> = (0..extra).map(|_| s.spawn(|_| work())).collect();
            // The trial thread is a fold worker too, so `extra == 1` means
            // two folds in flight, not a handoff to one helper.
            for (v, slot) in work() {
                slots[v] = Some(slot);
            }
            for handle in handles {
                for (v, slot) in handle.join().expect("fold workers propagate panics") {
                    slots[v] = Some(slot);
                }
            }
        })
        .expect("fold workers propagate panics");

        // In-order commit: bookkeeping identical to the sequential loop.
        let mut scores = Vec::with_capacity(n);
        let mut cost_units = 0u64;
        let mut status = TrialStatus::Completed;
        let mut snapshots: Vec<Option<FitState>> = Vec::new();
        let mut resumed = false;
        let mut diverged_folds = 0usize;
        let mut failed_folds = 0usize;
        for (v, slot) in slots.into_iter().enumerate() {
            if self.deadline_exceeded(&start, cost_units) {
                status = TrialStatus::TimedOut;
                break;
            }
            match slot.expect("every fold below the cursor was computed") {
                FoldSlot::Degenerate => scores.push(self.score_kind.failed_fold_score()),
                FoldSlot::Fit {
                    score,
                    cost,
                    snapshot,
                    resumed: fold_resumed,
                    diverged,
                    failed,
                    dur_us,
                } => {
                    obs::record_span(obs::SpanPhase::Fold, dur_us, Some(format!("fold={v}")));
                    cost_units += cost;
                    scores.push(score);
                    resumed |= fold_resumed;
                    diverged_folds += diverged as usize;
                    failed_folds += failed as usize;
                    if capture {
                        if snapshots.len() <= v {
                            snapshots.resize(v + 1, None);
                        }
                        snapshots[v] = snapshot;
                    }
                }
            }
        }
        ParallelFoldResult {
            outcome: self.finish_outcome(scores, cost_units, status, budget, &start),
            snapshots,
            resumed,
            diverged_folds,
            failed_folds,
        }
    }
}

/// A claim on fold-parallel thread slots, released on drop so a panicking
/// trial cannot leak pool capacity for the rest of its batch.
struct FoldClaim {
    /// The batch's budget the slots came from; `None` for a standalone
    /// evaluator, whose cap is local and needs no return.
    budget: Option<Arc<FoldBudget>>,
    /// Extra threads this trial may spawn for its folds.
    granted: usize,
}

impl Drop for FoldClaim {
    fn drop(&mut self) {
        if let Some(budget) = &self.budget {
            budget.release(self.granted);
        }
    }
}

/// What fitting one fold produced, independent of commit order.
struct FoldFit {
    preds: Vec<f64>,
    cost: u64,
    snapshot: Option<FitState>,
    resumed: bool,
    diverged: bool,
    failed: bool,
}

/// One fold's computed result awaiting its in-order commit.
enum FoldSlot {
    /// Degenerate fold geometry (train < 2 or empty validation): scored the
    /// metric floor without fitting, exactly as the sequential loop does —
    /// no model, no cost, no Fold span.
    Degenerate,
    /// A fitted fold.
    Fit {
        score: f64,
        cost: u64,
        snapshot: Option<FitState>,
        resumed: bool,
        diverged: bool,
        failed: bool,
        /// Worker-measured fit+predict duration, committed as the Fold
        /// span's duration on the trial thread.
        dur_us: u64,
    },
}

/// Everything the fold-parallel path hands back to
/// [`CvEvaluator::evaluate_mlp`]'s shared tail.
struct ParallelFoldResult {
    outcome: EvalOutcome,
    snapshots: Vec<Option<FitState>>,
    resumed: bool,
    diverged_folds: usize,
    failed_folds: usize,
}

/// Fits `params` on the full training set and scores train and test — the
/// "train the remaining configuration on the full dataset" step that ends
/// every bandit run (paper Fig. 1).
pub fn fit_and_score(
    train: &Dataset,
    test: &Dataset,
    params: &MlpParams,
    score_kind: ScoreKind,
) -> FinalFit {
    let k_classes = train.task().n_classes().unwrap_or(0);
    let start = Instant::now();
    let (train_pred, test_pred, cost) = match train.task() {
        Task::Regression => {
            let mut model = MlpRegressor::new(params.clone());
            let report = model.fit(train).expect("final fit on validated data");
            (
                model.predict(train.x()),
                model.predict(test.x()),
                report.cost_units,
            )
        }
        _ => {
            let mut model = MlpClassifier::new(params.clone());
            let report = model.fit(train).expect("final fit on validated data");
            (
                model.predict(train.x()),
                model.predict(test.x()),
                report.cost_units,
            )
        }
    };
    FinalFit {
        train_score: score_kind.compute(train.y(), &train_pred, k_classes),
        test_score: score_kind.compute(test.y(), &test_pred, k_classes),
        cost_units: cost,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

/// Scores of the final full-data fit.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FinalFit {
    /// Score on the training set.
    pub train_score: f64,
    /// Score on the held-out test set.
    pub test_score: f64,
    /// Deterministic training cost.
    pub cost_units: u64,
    /// Wall-clock seconds of the final fit.
    pub wall_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::synth::{make_classification, ClassificationSpec};

    fn dataset(seed: u64) -> Dataset {
        make_classification(
            &ClassificationSpec {
                n_instances: 300,
                n_features: 6,
                n_informative: 6,
                n_classes: 2,
                n_blobs: 2,
                label_purity: 0.95,
                blob_spread: 0.3,
                ..Default::default()
            },
            seed,
        )
    }

    fn quick_params() -> MlpParams {
        MlpParams {
            hidden_layer_sizes: vec![8],
            max_iter: 8,
            ..Default::default()
        }
    }

    #[test]
    fn vanilla_evaluation_produces_k_fold_scores() {
        let data = dataset(1);
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_params(), 1);
        let out = ev.evaluate(&quick_params(), 150, 0);
        assert_eq!(out.fold_scores.folds.len(), 5);
        assert!(out
            .fold_scores
            .folds
            .iter()
            .all(|&s| (0.0..=1.0).contains(&s)));
        assert!((out.fold_scores.gamma_pct - 50.0).abs() < 1e-9);
        assert!(out.cost_units > 0);
    }

    #[test]
    fn enhanced_evaluation_builds_grouping_once() {
        let data = dataset(2);
        let ev = CvEvaluator::new(&data, Pipeline::enhanced(), quick_params(), 2);
        assert!(ev.grouping().is_some());
        let out = ev.evaluate(&quick_params(), 100, 0);
        assert_eq!(out.fold_scores.folds.len(), 5);
        // Eq.3 score is >= the fold mean (positive variance bonus).
        assert!(out.score >= out.fold_scores.mean() - 1e-12);
    }

    #[test]
    fn budget_is_clamped_to_dataset_size() {
        let data = dataset(3);
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_params(), 3);
        let out = ev.evaluate(&quick_params(), 10_000, 0);
        assert!((out.fold_scores.gamma_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn evaluation_is_deterministic_per_stream() {
        let data = dataset(4);
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_params(), 4);
        let a = ev.evaluate(&quick_params(), 120, 7);
        let b = ev.evaluate(&quick_params(), 120, 7);
        assert_eq!(a.fold_scores.folds, b.fold_scores.folds);
        let c = ev.evaluate(&quick_params(), 120, 8);
        assert_ne!(a.fold_scores.folds, c.fold_scores.folds);
    }

    /// The fold-parallel contract at the evaluator level: a standalone
    /// evaluator (no pool, so the cap applies outright) must produce
    /// bit-identical outcomes at every `fold_workers` value, including the
    /// Fold spans it stashes for the journal (same count, same order, same
    /// `fold=v` details — only durations may differ).
    #[test]
    fn fold_parallel_evaluation_is_bit_identical() {
        let data = dataset(4);
        let seq = CvEvaluator::new(&data, Pipeline::enhanced(), quick_params(), 4);
        for fold_workers in [2, 4, 16] {
            let par = CvEvaluator::new(&data, Pipeline::enhanced(), quick_params(), 4)
                .with_fold_workers(fold_workers);
            for stream in [0u64, 7, 99] {
                let a = seq.evaluate(&quick_params(), 150, stream);
                let spans_a = obs::take_span_stash();
                let b = par.evaluate(&quick_params(), 150, stream);
                let spans_b = obs::take_span_stash();
                let bits = |o: &EvalOutcome| {
                    (
                        o.fold_scores
                            .folds
                            .iter()
                            .map(|s| s.to_bits())
                            .collect::<Vec<_>>(),
                        o.score.to_bits(),
                        o.cost_units,
                        o.status.clone(),
                    )
                };
                assert_eq!(
                    bits(&a),
                    bits(&b),
                    "outcome diverged at fold_workers={fold_workers} stream={stream}"
                );
                assert_eq!(spans_a.len(), spans_b.len(), "span count diverged");
                for (x, y) in spans_a.iter().zip(&spans_b) {
                    assert_eq!(x.phase, y.phase);
                    assert_eq!(x.detail, y.detail, "span order diverged");
                }
            }
        }
    }

    /// Warm-start snapshots must be unaffected by fold parallelism: the
    /// rung ladder run with `fold_workers > 1` deposits the same snapshots
    /// (hence the same resumed outcomes) as the sequential evaluator.
    #[test]
    fn fold_parallel_warm_start_matches_sequential() {
        let data = dataset(9);
        let run = |fold_workers: usize| {
            let cache = Arc::new(ContinuationCache::new());
            let ev = CvEvaluator::new(&data, Pipeline::enhanced(), quick_params(), 9)
                .with_continuation(Arc::clone(&cache))
                .with_fold_workers(fold_workers);
            let low = ev.evaluate_job(&TrialJob::new(quick_params(), 100, 3).with_continuation(42));
            let high =
                ev.evaluate_job(&TrialJob::new(quick_params(), 200, 3).with_continuation(42));
            (low, high)
        };
        let (seq_low, seq_high) = run(1);
        let (par_low, par_high) = run(4);
        assert_eq!(seq_low.fold_scores.folds, par_low.fold_scores.folds);
        assert_eq!(seq_high.fold_scores.folds, par_high.fold_scores.folds);
        assert_eq!(seq_high.resumed_from, par_high.resumed_from);
        assert_eq!(
            seq_high.resumed_from,
            Some(100),
            "second rung did not warm-start"
        );
        assert_eq!(seq_high.cost_units, par_high.cost_units);
    }

    /// The fold-cache clear on overflow is no longer silent: churning
    /// through more than `FOLD_CACHE_CAP` distinct fold constructions bumps
    /// `hpo_fold_cache_evictions_total`.
    #[test]
    fn fold_cache_eviction_bumps_counter() {
        let data = dataset(11);
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_params(), 11);
        let counter = obs::global_metrics().counter("hpo_fold_cache_evictions_total");
        let before = counter.get();
        // Trivial fit_predict: only fold construction matters here.
        for stream in 0..(FOLD_CACHE_CAP as u64 + 2) {
            ev.evaluate_fn(64, stream, |_, _, val| (vec![0.0; val.n_instances()], 1));
        }
        assert!(
            counter.get() > before,
            "cache overflow did not count an eviction"
        );
    }

    #[test]
    fn fold_stream_honors_pipeline_semantics() {
        let data = dataset(12);
        // Per-config (paper): different candidates, different streams.
        let per = CvEvaluator::new(&data, Pipeline::vanilla(), quick_params(), 1);
        assert_ne!(per.fold_stream(0, 0, 1), per.fold_stream(0, 0, 2));
        assert_ne!(per.fold_stream(0, 1, 1), per.fold_stream(0, 0, 1));
        // Shared (scikit-learn): candidate index is ignored, rung still counts.
        let shared = CvEvaluator::new(
            &data,
            Pipeline::vanilla().with_shared_folds(),
            quick_params(),
            1,
        );
        assert_eq!(shared.fold_stream(0, 0, 1), shared.fold_stream(0, 0, 2));
        assert_ne!(shared.fold_stream(0, 1, 1), shared.fold_stream(0, 0, 1));
    }

    #[test]
    fn score_kind_selection_follows_imbalance() {
        let balanced = dataset(5);
        assert_eq!(ScoreKind::for_dataset(&balanced), ScoreKind::Accuracy);

        let imbalanced = make_classification(
            &ClassificationSpec {
                n_instances: 500,
                class_weights: vec![0.97, 0.03],
                label_noise: 0.0,
                ..Default::default()
            },
            6,
        );
        assert_eq!(ScoreKind::for_dataset(&imbalanced), ScoreKind::WeightedF1);

        use hpo_data::synth::{make_regression, RegressionSpec};
        let reg = make_regression(&RegressionSpec::default(), 7);
        assert_eq!(ScoreKind::for_dataset(&reg), ScoreKind::R2);
    }

    #[test]
    fn fit_and_score_beats_chance_on_easy_data() {
        // Split one draw so train and test share the blob geometry.
        let full = make_classification(
            &ClassificationSpec {
                n_instances: 400,
                n_features: 6,
                n_informative: 6,
                n_classes: 2,
                n_blobs: 2,
                label_purity: 0.95,
                blob_spread: 0.3,
                ..Default::default()
            },
            8,
        );
        let mut rng = hpo_data::rng::rng_from_seed(8);
        let tt = hpo_data::split::stratified_train_test_split(&full, 0.25, &mut rng).unwrap();
        let fit = fit_and_score(
            &tt.train,
            &tt.test,
            &MlpParams {
                hidden_layer_sizes: vec![16],
                learning_rate_init: 0.01,
                max_iter: 40,
                ..Default::default()
            },
            ScoreKind::Accuracy,
        );
        assert!(fit.test_score > 0.8, "test accuracy {}", fit.test_score);
        assert!(fit.train_score >= fit.test_score - 0.1);
    }

    #[test]
    fn regression_pipeline_works_end_to_end() {
        use hpo_data::synth::{make_regression, RegressionSpec};
        let data = make_regression(
            &RegressionSpec {
                n_instances: 300,
                n_features: 5,
                n_informative: 5,
                noise: 0.1,
                ..Default::default()
            },
            10,
        );
        let ev = CvEvaluator::new(&data, Pipeline::enhanced(), quick_params(), 10);
        let out = ev.evaluate(
            &MlpParams {
                hidden_layer_sizes: vec![16],
                learning_rate_init: 0.01,
                max_iter: 20,
                ..Default::default()
            },
            200,
            0,
        );
        assert_eq!(out.fold_scores.folds.len(), 5);
        assert_eq!(ev.score_kind(), ScoreKind::R2);
    }

    #[test]
    fn failed_fold_floor_depends_on_the_metric() {
        // Accuracy/F1 are bounded below by 0.0; R² by the evaluator's fold
        // clamp at -1.0. Scoring a crashed R² fold 0.0 would outrank real
        // fits with negative scores — the satellite-1 bug.
        assert_eq!(ScoreKind::Accuracy.failed_fold_score(), 0.0);
        assert_eq!(ScoreKind::WeightedF1.failed_fold_score(), 0.0);
        assert_eq!(ScoreKind::R2.failed_fold_score(), -1.0);
    }

    #[test]
    fn warm_evaluation_resumes_and_matches_fold_count() {
        use crate::continuation::ContinuationCache;
        use crate::exec::TrialJob;
        let data = dataset(20);
        let cache = Arc::new(ContinuationCache::new());
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_params(), 20)
            .with_continuation(Arc::clone(&cache));
        let key = 0xFEED;

        // First (small-budget) evaluation: cold, deposits snapshots.
        let small = ev.evaluate_job(&TrialJob::new(quick_params(), 100, 5).with_continuation(key));
        assert_eq!(small.resumed_from, None, "nothing to resume from yet");
        assert!(!cache.is_empty(), "completed trial left no snapshots");

        // Second (larger-budget) evaluation resumes from them.
        let large = ev.evaluate_job(&TrialJob::new(quick_params(), 200, 6).with_continuation(key));
        assert_eq!(large.resumed_from, Some(100), "large budget did not resume");
        assert_eq!(large.fold_scores.folds.len(), 5);
        assert!(large.score.is_finite());

        // The warm evaluation costs less than the cold one at the same
        // budget: it only trains the incremental epoch share.
        let cold = CvEvaluator::new(&data, Pipeline::vanilla(), quick_params(), 20);
        let cold_large = cold.evaluate(&quick_params(), 200, 6);
        assert!(
            large.cost_units < cold_large.cost_units,
            "warm {} !< cold {}",
            large.cost_units,
            cold_large.cost_units
        );
    }

    #[test]
    fn fingerprint_mismatch_falls_back_to_a_cold_fit() {
        use crate::continuation::ContinuationCache;
        use crate::exec::TrialJob;
        let data = dataset(21);
        let cache = Arc::new(ContinuationCache::new());
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_params(), 21)
            .with_continuation(Arc::clone(&cache));
        let key = 0xBEEF;
        ev.evaluate_job(&TrialJob::new(quick_params(), 100, 5).with_continuation(key));

        // Same key, different hyperparameters: the fingerprint check must
        // reject the snapshot rather than resume into the wrong weights.
        let other = MlpParams {
            hidden_layer_sizes: vec![12],
            max_iter: 8,
            ..Default::default()
        };
        let out = ev.evaluate_job(&TrialJob::new(other, 200, 6).with_continuation(key));
        assert_eq!(out.resumed_from, None);
        assert!(out.score.is_finite());
    }

    #[test]
    fn jobs_without_a_key_stay_cold_even_with_a_cache_attached() {
        use crate::continuation::ContinuationCache;
        use crate::exec::TrialJob;
        let data = dataset(22);
        let cache = Arc::new(ContinuationCache::new());
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_params(), 22)
            .with_continuation(Arc::clone(&cache));
        let out = ev.evaluate_job(&TrialJob::new(quick_params(), 100, 5));
        assert_eq!(out.resumed_from, None);
        assert!(cache.is_empty(), "keyless job must not deposit snapshots");
    }

    #[test]
    fn warm_and_cold_cover_the_same_folds_deterministically() {
        use crate::continuation::ContinuationCache;
        use crate::exec::TrialJob;
        let data = dataset(23);
        let cache = Arc::new(ContinuationCache::new());
        let ev = CvEvaluator::new(&data, Pipeline::enhanced(), quick_params(), 23)
            .with_continuation(Arc::clone(&cache));
        let key = 0xCAFE;
        ev.evaluate_job(&TrialJob::new(quick_params(), 100, 5).with_continuation(key));
        let a = ev.evaluate_job(&TrialJob::new(quick_params(), 200, 6).with_continuation(key));
        // Re-running the same warm evaluation (same snapshot, same stream)
        // is bit-identical — the cache replaced the budget-100 entry only
        // after trial 2 completed at budget 200, so re-lookup at 200 now
        // resumes from 200; evaluate against a fresh cache clone instead.
        let cache2 = Arc::new(ContinuationCache::new());
        cache2.import(cache.export());
        let ev2 = CvEvaluator::new(&data, Pipeline::enhanced(), quick_params(), 23)
            .with_continuation(cache2);
        let b = ev2.evaluate_job(&TrialJob::new(quick_params(), 200, 6).with_continuation(key));
        assert_eq!(a.fold_scores.folds.len(), b.fold_scores.folds.len());
    }
}
