//! Trial records and the optimization history.

use crate::evaluator::EvalOutcome;
use crate::space::Configuration;
use serde::{Deserialize, Serialize};

/// One evaluation of one configuration at one budget.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trial {
    /// The configuration evaluated.
    pub config: Configuration,
    /// Instance budget `b_t` the evaluation used.
    pub budget: usize,
    /// SHA rung / Hyperband bracket-rung the trial belongs to.
    pub rung: usize,
    /// The evaluation outcome.
    pub outcome: EvalOutcome,
}

/// Append-only record of all trials in one optimization run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct History {
    trials: Vec<Trial>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History { trials: Vec::new() }
    }

    /// Records a trial.
    pub fn push(&mut self, trial: Trial) {
        self.trials.push(trial);
    }

    /// All trials, in evaluation order.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Number of evaluations performed.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether any trial was recorded.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Total deterministic cost across all trials.
    pub fn total_cost(&self) -> u64 {
        self.trials.iter().map(|t| t.outcome.cost_units).sum()
    }

    /// Total wall-clock seconds across all trials.
    pub fn total_wall_seconds(&self) -> f64 {
        self.trials.iter().map(|t| t.outcome.wall_seconds).sum()
    }

    /// The trial with the best pipeline score at the largest budget
    /// (ties broken by score).
    ///
    /// Failed trials (non-`Completed` status or a non-finite score) rank
    /// strictly below every completed trial regardless of budget, and
    /// scores are compared with `f64::total_cmp` so a NaN can never win a
    /// tie arbitrarily.
    pub fn best(&self) -> Option<&Trial> {
        self.trials.iter().max_by(|a, b| {
            let usable = |t: &Trial| t.outcome.status.is_ok() && t.outcome.score.is_finite();
            usable(a)
                .cmp(&usable(b))
                .then(a.budget.cmp(&b.budget))
                .then(crate::exec::compare_scores(
                    a.outcome.score,
                    b.outcome.score,
                ))
        })
    }

    /// Number of trials that did not complete (diverged, timed out or
    /// failed).
    pub fn n_failures(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| !t.outcome.status.is_ok())
            .count()
    }

    /// Trials of a given rung.
    pub fn rung(&self, rung: usize) -> impl Iterator<Item = &Trial> {
        self.trials.iter().filter(move |t| t.rung == rung)
    }

    /// Merges another history into this one (used by Hyperband brackets and
    /// ASHA workers).
    pub fn extend(&mut self, other: History) {
        self.trials.extend(other.trials);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::TrialStatus;
    use hpo_metrics::FoldScores;

    fn trial(budget: usize, rung: usize, score: f64) -> Trial {
        Trial {
            config: Configuration(vec![0]),
            budget,
            rung,
            outcome: EvalOutcome {
                fold_scores: FoldScores::new(vec![score], 10.0),
                score,
                cost_units: 100,
                wall_seconds: 0.5,
                status: TrialStatus::Completed,
                resumed_from: None,
            },
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut h = History::new();
        h.push(trial(10, 0, 0.5));
        h.push(trial(20, 1, 0.7));
        assert_eq!(h.len(), 2);
        assert_eq!(h.total_cost(), 200);
        assert!((h.total_wall_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_prefers_largest_budget_then_score() {
        let mut h = History::new();
        h.push(trial(10, 0, 0.99));
        h.push(trial(20, 1, 0.60));
        h.push(trial(20, 1, 0.70));
        let best = h.best().unwrap();
        assert_eq!(best.budget, 20);
        assert!((best.outcome.score - 0.70).abs() < 1e-12);
    }

    #[test]
    fn rung_filter_selects_matching_trials() {
        let mut h = History::new();
        h.push(trial(10, 0, 0.1));
        h.push(trial(20, 1, 0.2));
        h.push(trial(20, 1, 0.3));
        assert_eq!(h.rung(1).count(), 2);
        assert_eq!(h.rung(5).count(), 0);
    }

    #[test]
    fn empty_history_has_no_best() {
        assert!(History::new().best().is_none());
        assert!(History::new().is_empty());
    }

    #[test]
    fn nan_scored_trial_never_wins_best() {
        let mut h = History::new();
        h.push(trial(10, 0, 0.7));
        h.push(trial(20, 1, f64::NAN));
        h.push(trial(20, 1, f64::INFINITY));
        let best = h.best().unwrap();
        assert!((best.outcome.score - 0.7).abs() < 1e-12);
    }

    #[test]
    fn failed_trials_rank_below_completed_ones() {
        let mut h = History::new();
        h.push(trial(10, 0, 0.4));
        let mut failed = trial(40, 2, -1.0e9);
        failed.outcome.status = TrialStatus::Failed { attempts: 2 };
        h.push(failed);
        // The failed trial has the larger budget but must not win.
        let best = h.best().unwrap();
        assert!(best.outcome.status.is_ok());
        assert!((best.outcome.score - 0.4).abs() < 1e-12);
        assert_eq!(h.n_failures(), 1);
    }

    #[test]
    fn all_failed_history_still_returns_a_best() {
        let mut h = History::new();
        let mut a = trial(10, 0, -1.0e9);
        a.outcome.status = TrialStatus::Diverged;
        let mut b = trial(20, 1, -1.0e9);
        b.outcome.status = TrialStatus::TimedOut;
        h.push(a);
        h.push(b);
        assert_eq!(h.best().unwrap().budget, 20);
        assert_eq!(h.n_failures(), 2);
    }
}
