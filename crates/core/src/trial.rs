//! Trial records and the optimization history.

use crate::evaluator::EvalOutcome;
use crate::space::Configuration;
use serde::{Deserialize, Serialize};

/// One evaluation of one configuration at one budget.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trial {
    /// The configuration evaluated.
    pub config: Configuration,
    /// Instance budget `b_t` the evaluation used.
    pub budget: usize,
    /// SHA rung / Hyperband bracket-rung the trial belongs to.
    pub rung: usize,
    /// The evaluation outcome.
    pub outcome: EvalOutcome,
}

/// Append-only record of all trials in one optimization run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct History {
    trials: Vec<Trial>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History { trials: Vec::new() }
    }

    /// Records a trial.
    pub fn push(&mut self, trial: Trial) {
        self.trials.push(trial);
    }

    /// All trials, in evaluation order.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Number of evaluations performed.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether any trial was recorded.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Total deterministic cost across all trials.
    pub fn total_cost(&self) -> u64 {
        self.trials.iter().map(|t| t.outcome.cost_units).sum()
    }

    /// Total wall-clock seconds across all trials.
    pub fn total_wall_seconds(&self) -> f64 {
        self.trials.iter().map(|t| t.outcome.wall_seconds).sum()
    }

    /// The trial with the best pipeline score at the largest budget
    /// (ties broken by score).
    pub fn best(&self) -> Option<&Trial> {
        self.trials.iter().max_by(|a, b| {
            (a.budget, a.outcome.score)
                .partial_cmp(&(b.budget, b.outcome.score))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Trials of a given rung.
    pub fn rung(&self, rung: usize) -> impl Iterator<Item = &Trial> {
        self.trials.iter().filter(move |t| t.rung == rung)
    }

    /// Merges another history into this one (used by Hyperband brackets and
    /// ASHA workers).
    pub fn extend(&mut self, other: History) {
        self.trials.extend(other.trials);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_metrics::FoldScores;

    fn trial(budget: usize, rung: usize, score: f64) -> Trial {
        Trial {
            config: Configuration(vec![0]),
            budget,
            rung,
            outcome: EvalOutcome {
                fold_scores: FoldScores::new(vec![score], 10.0),
                score,
                cost_units: 100,
                wall_seconds: 0.5,
            },
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut h = History::new();
        h.push(trial(10, 0, 0.5));
        h.push(trial(20, 1, 0.7));
        assert_eq!(h.len(), 2);
        assert_eq!(h.total_cost(), 200);
        assert!((h.total_wall_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_prefers_largest_budget_then_score() {
        let mut h = History::new();
        h.push(trial(10, 0, 0.99));
        h.push(trial(20, 1, 0.60));
        h.push(trial(20, 1, 0.70));
        let best = h.best().unwrap();
        assert_eq!(best.budget, 20);
        assert!((best.outcome.score - 0.70).abs() < 1e-12);
    }

    #[test]
    fn rung_filter_selects_matching_trials() {
        let mut h = History::new();
        h.push(trial(10, 0, 0.1));
        h.push(trial(20, 1, 0.2));
        h.push(trial(20, 1, 0.3));
        assert_eq!(h.rung(1).count(), 2);
        assert_eq!(h.rung(5).count(), 0);
    }

    #[test]
    fn empty_history_has_no_best() {
        assert!(History::new().best().is_none());
        assert!(History::new().is_empty());
    }
}
