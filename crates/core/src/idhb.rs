//! Iterative Deepening Hyperband (Brandt et al., 2023).
//!
//! Hyperband must be told its maximum budget up front; IDHB instead runs a
//! sequence of successive-halving brackets that *deepen incrementally* — the
//! first iteration is a cheap, shallow bracket over a few configurations,
//! and each subsequent iteration widens the entry rung by η and opens one
//! more rung of the shared budget ladder. Because iteration `d+1`'s
//! candidate prefix contains iteration `d`'s (the pool is sampled once, at
//! the final iteration's width), every `(configuration, rung)` evaluation
//! from earlier iterations is *reused* rather than re-run: the marginal
//! cost of deepening is only the newly-widened rim plus the newly-opened
//! top rung. This gives Hyperband-like allocation with anytime behavior —
//! stop after any iteration and the result is a complete (shallower)
//! bracket.
//!
//! Bracket geometry (keep counts from the bracket top, the budget ladder)
//! comes from [`crate::rung`]; reuse is a score cache keyed by
//! `(pool index, rung)`. Each rung evaluates only its cache misses as one
//! [`TrialJob`] batch, and ranking merges cached and fresh scores, so the
//! schedule — and therefore journals and checkpoints — is identical at
//! every worker count.

use crate::continuation::CONTINUATION_KEY_SALT;
use crate::exec::{compare_scores, TrialEvaluator, TrialJob};
use crate::obs::RunEvent;
use crate::rung::{keep_count, ladder};
use crate::space::{Configuration, SearchSpace};
use crate::trial::{History, Trial};
use hpo_data::rng::derive_seed;
use hpo_models::mlp::MlpParams;
use std::collections::HashMap;

/// IDHB settings.
#[derive(Clone, Debug)]
pub struct IdhbConfig {
    /// Reduction factor η (widening and keep factor alike).
    pub eta: usize,
    /// Budget of the ladder's entry rung (instances).
    pub min_budget: usize,
    /// Configurations in the first (shallowest) iteration; iteration `d`
    /// enters `n_base · η^d`.
    pub n_base: usize,
    /// Upper bound on iterations; the ladder height caps it too (an
    /// iteration deeper than the ladder adds no new rung).
    pub max_iterations: usize,
}

impl Default for IdhbConfig {
    fn default() -> Self {
        IdhbConfig {
            eta: 3,
            min_budget: 20,
            n_base: 4,
            max_iterations: 8,
        }
    }
}

/// Outcome of an IDHB run.
#[derive(Clone, Debug)]
pub struct IdhbResult {
    /// Best configuration seen (largest budget reached, then score).
    pub best: Configuration,
    /// Every evaluation actually performed (cache hits are not re-recorded).
    pub history: History,
}

/// Runs Iterative Deepening Hyperband.
///
/// # Panics
/// Panics when `eta < 2` or `n_base == 0`.
pub fn idhb<E: TrialEvaluator + ?Sized>(
    evaluator: &E,
    space: &SearchSpace,
    base_params: &MlpParams,
    config: &IdhbConfig,
    stream: u64,
) -> IdhbResult {
    assert!(config.eta >= 2, "eta must be at least 2");
    assert!(config.n_base >= 1, "need at least one base configuration");

    let r_max = evaluator.total_budget();
    let r_min = config.min_budget.clamp(1, r_max);
    let budgets = ladder(r_min, r_max, config.eta);
    let n_iters = budgets.len().min(config.max_iterations.max(1));

    // One pool, sampled at the final iteration's width; iteration d uses the
    // prefix of n_base·η^d. Prefix nesting is what makes earlier evaluations
    // reusable — and the pool index doubles as the stable continuation key,
    // so a rung-i+1 evaluation warm-starts from the rung-i fold snapshots no
    // matter which iteration deposited them.
    let pool_cap = (config.n_base as u64)
        .saturating_mul((config.eta as u64).saturating_pow((n_iters - 1) as u32))
        .min(usize::MAX as u64) as usize;
    let pool = space.sample_distinct(pool_cap, derive_seed(stream, 0x1DB));

    let recorder = evaluator.recorder();
    let cancel = evaluator.cancel_token();
    let mut history = History::new();
    let mut best: Option<(Configuration, usize, f64)> = None;
    // Scores of committed evaluations, keyed by (pool index, rung).
    let mut cache: HashMap<(usize, usize), f64> = HashMap::new();

    'iterations: for d in 0..n_iters {
        if cancel.is_cancelled() {
            break;
        }
        let depth = d.min(budgets.len() - 1);
        let n_d = ((config.n_base as u64)
            .saturating_mul((config.eta as u64).saturating_pow(d as u32))
            .min(pool.len() as u64)) as usize;
        recorder.emit(RunEvent::BracketStarted {
            bracket: d,
            n_configs: n_d,
            budget: budgets[0],
        });
        let mut survivors: Vec<usize> = (0..n_d).collect();

        for i in 0..=depth {
            if survivors.is_empty() {
                break;
            }
            // Cooperative cancellation at the rung boundary: committed rungs
            // are already journaled/checkpointed; a resumed run replays them
            // (refilling the cache at no cost) and finishes the rest.
            if cancel.is_cancelled() {
                break 'iterations;
            }
            let budget = budgets[i];
            recorder.emit(RunEvent::RungStarted {
                bracket: d,
                rung: i,
                n_candidates: survivors.len(),
                budget,
            });
            // Iterative deepening's reuse: only cache misses run. In
            // iteration d those are the widened rim (pool indices new at
            // this width) plus the one newly-opened top rung.
            let fresh: Vec<usize> = survivors
                .iter()
                .copied()
                .filter(|&idx| !cache.contains_key(&(idx, i)))
                .collect();
            let jobs: Vec<TrialJob> = fresh
                .iter()
                .map(|&idx| {
                    TrialJob::new(
                        space.to_params(&pool[idx], base_params),
                        budget,
                        evaluator.fold_stream(stream, i as u64, idx as u64),
                    )
                    .with_continuation(derive_seed(stream, CONTINUATION_KEY_SALT + idx as u64))
                    .with_values(space.trial_values(&pool[idx]))
                })
                .collect();
            let outcomes = if jobs.is_empty() {
                Vec::new()
            } else {
                evaluator.evaluate_batch(&jobs)
            };
            for (&idx, outcome) in fresh.iter().zip(outcomes) {
                cache.insert((idx, i), outcome.score);
                // NaN-safe "largest budget, then score" winner tracking;
                // cached reuses were already considered when first run.
                let candidate_wins = best.as_ref().is_none_or(|(_, b, sc)| {
                    budget > *b
                        || (budget == *b
                            && compare_scores(outcome.score, *sc) == std::cmp::Ordering::Greater)
                });
                if candidate_wins {
                    best = Some((pool[idx].clone(), budget, outcome.score));
                }
                history.push(Trial {
                    config: pool[idx].clone(),
                    budget,
                    rung: d * 100 + i, // iteration-qualified rung id
                    outcome,
                });
            }
            if i == depth {
                break;
            }
            // Keep counts from the top of this iteration's bracket —
            // floor(n_d/η^{i+1}).max(1) — ranked over the *merged* cached +
            // fresh scores, so reused configurations compete on equal
            // footing with newly-widened ones.
            let keep = keep_count(n_d, config.eta, i).min(survivors.len());
            let mut scored: Vec<(usize, f64)> = survivors
                .iter()
                .map(|&idx| (idx, cache[&(idx, i)]))
                .collect();
            scored.sort_by(|a, b| compare_scores(b.1, a.1));
            recorder.emit(RunEvent::Promotion {
                bracket: d,
                from_rung: i,
                to_rung: i + 1,
                promoted: keep,
                pruned: survivors.len().saturating_sub(keep),
            });
            survivors = scored.into_iter().take(keep).map(|(idx, _)| idx).collect();
        }
    }

    // `best` is Some unless the run was cancelled before any trial finished.
    IdhbResult {
        best: best
            .map(|(cand, _, _)| cand)
            .unwrap_or_else(|| pool.first().cloned().unwrap_or_else(|| space.configuration(0))),
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::CvEvaluator;
    use crate::pipeline::Pipeline;
    use hpo_data::synth::{make_classification, ClassificationSpec};

    fn dataset() -> hpo_data::dataset::Dataset {
        make_classification(
            &ClassificationSpec {
                n_instances: 240,
                n_features: 5,
                n_informative: 5,
                label_purity: 0.95,
                blob_spread: 0.3,
                ..Default::default()
            },
            1,
        )
    }

    fn quick_base() -> MlpParams {
        MlpParams {
            hidden_layer_sizes: vec![6],
            max_iter: 4,
            ..Default::default()
        }
    }

    #[test]
    fn iterations_deepen_and_reuse() {
        let data = dataset();
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_base(), 1);
        let space = SearchSpace::mlp_cv18();
        let cfg = IdhbConfig {
            eta: 2,
            min_budget: 30,
            n_base: 3,
            max_iterations: 3,
        };
        // ladder(30, 240, 2) = [30, 60, 120, 240]; iterations enter 3/6/12
        // configs at depths 0/1/2.
        let result = idhb(&ev, &space, &quick_base(), &cfg, 0);
        let rung_count = |d: usize, i: usize| {
            result
                .history
                .trials()
                .iter()
                .filter(|t| t.rung == d * 100 + i)
                .count()
        };
        // Iteration 0: 3 fresh at rung 0.
        assert_eq!(rung_count(0, 0), 3);
        // Iteration 1 enters 6 but reuses the 3 cached: only 3 fresh.
        assert_eq!(rung_count(1, 0), 3);
        // Iteration 2 enters 12, reuses 6.
        assert_eq!(rung_count(2, 0), 6);
        // Each deeper iteration opens exactly one new top rung.
        assert!(rung_count(1, 1) >= 1);
        assert!(rung_count(2, 2) >= 1);
    }

    #[test]
    fn deterministic_per_stream() {
        let data = dataset();
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_base(), 2);
        let space = SearchSpace::mlp_cv18();
        let cfg = IdhbConfig::default();
        let a = idhb(&ev, &space, &quick_base(), &cfg, 5);
        let b = idhb(&ev, &space, &quick_base(), &cfg, 5);
        assert_eq!(a.best, b.best);
        assert_eq!(a.history.len(), b.history.len());
    }

    #[test]
    fn budgets_follow_the_shared_ladder() {
        let data = dataset();
        let ev = CvEvaluator::new(&data, Pipeline::enhanced(), quick_base(), 3);
        let space = SearchSpace::mlp_cv18();
        let cfg = IdhbConfig {
            eta: 3,
            min_budget: 20,
            n_base: 3,
            max_iterations: 4,
        };
        let result = idhb(&ev, &space, &quick_base(), &cfg, 1);
        // ladder(20, 240, 3) = [20, 60, 180, 240]
        for t in result.history.trials() {
            let i = t.rung % 100;
            assert_eq!(t.budget, [20, 60, 180, 240][i]);
        }
        assert!(result.history.trials().iter().any(|t| t.budget == 240));
    }
}
