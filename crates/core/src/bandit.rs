//! Classic multi-armed bandits as HPO algorithms: UCB1, Gaussian Thompson
//! sampling, and ε-greedy.
//!
//! Each sampled configuration is an *arm*; a pull evaluates the arm at the
//! next budget of the shared geometric ladder ([`crate::rung::ladder`]), so
//! repeated pulls deepen the arm's budget exactly like rung climbs — and,
//! because an arm's continuation key is stable across pulls, each climb
//! warm-starts from the fold snapshots the previous pull deposited. This is
//! the budget-as-instances analogue of the AutoRAG-style bandit runners:
//! where halving prunes by quota, bandits re-allocate pulls by observed
//! reward.
//!
//! Like ASHA, the loop runs in deterministic *waves*: the policy selects a
//! batch of distinct arms from the committed statistics, the batch is handed
//! to the execution engine as one [`TrialJob`] batch, and outcomes are
//! committed in submission order before the next selection. All randomness
//! (Thompson posteriors, ε-greedy exploration) derives from
//! [`derive_seed`] chains keyed by `(wave, slot, arm)` — never from thread
//! timing — so equal seeds give bit-identical searches, journals and
//! checkpoints at every worker count.

use crate::continuation::CONTINUATION_KEY_SALT;
use crate::exec::{compare_scores, TrialEvaluator, TrialJob};
use crate::obs::RunEvent;
use crate::rung;
use crate::space::{Configuration, SearchSpace};
use crate::trial::{History, Trial};
use hpo_data::rng::derive_seed;
use hpo_models::mlp::MlpParams;

/// Settings shared by every bandit policy.
#[derive(Clone, Debug)]
pub struct BanditConfig {
    /// Growth factor of the budget ladder (pull `k` of an arm runs at
    /// `min_budget · η^k`, capped at the total budget).
    pub eta: usize,
    /// Budget of an arm's first pull (instances).
    pub min_budget: usize,
    /// Number of arms (configurations sampled without replacement).
    pub n_configs: usize,
    /// Arms pulled per wave (one engine batch). Parallelism *within* the
    /// wave belongs to the engine; the schedule itself is worker-agnostic.
    pub batch: usize,
    /// Total pull budget across all arms; the run also stops early once
    /// every arm has climbed to the top of the ladder.
    pub total_pulls: usize,
}

impl Default for BanditConfig {
    fn default() -> Self {
        BanditConfig {
            eta: 2,
            min_budget: 20,
            n_configs: 12,
            batch: 4,
            total_pulls: 36,
        }
    }
}

/// UCB1 settings (Auer et al., 2002).
#[derive(Clone, Debug)]
pub struct UcbConfig {
    /// Shared bandit settings.
    pub bandit: BanditConfig,
    /// Exploration coefficient `c` in `mean + c·sqrt(ln t / n)`.
    pub exploration: f64,
}

impl Default for UcbConfig {
    fn default() -> Self {
        UcbConfig {
            bandit: BanditConfig::default(),
            exploration: std::f64::consts::SQRT_2,
        }
    }
}

/// Gaussian Thompson-sampling settings.
#[derive(Clone, Debug)]
pub struct ThompsonConfig {
    /// Shared bandit settings.
    pub bandit: BanditConfig,
    /// Prior mean of an arm's reward.
    pub prior_mean: f64,
    /// Prior standard deviation; the posterior narrows as `1/sqrt(n+1)`.
    pub prior_std: f64,
}

impl Default for ThompsonConfig {
    fn default() -> Self {
        ThompsonConfig {
            bandit: BanditConfig::default(),
            prior_mean: 0.5,
            prior_std: 0.5,
        }
    }
}

/// ε-greedy settings.
#[derive(Clone, Debug)]
pub struct EpsGreedyConfig {
    /// Shared bandit settings.
    pub bandit: BanditConfig,
    /// Probability of pulling a uniformly random arm instead of the
    /// empirical best.
    pub epsilon: f64,
}

impl Default for EpsGreedyConfig {
    fn default() -> Self {
        EpsGreedyConfig {
            bandit: BanditConfig::default(),
            epsilon: 0.1,
        }
    }
}

/// Outcome of a bandit run.
#[derive(Clone, Debug)]
pub struct BanditResult {
    /// Best configuration seen (largest budget reached, then score).
    pub best: Configuration,
    /// Every evaluation, in wave submission order.
    pub history: History,
}

/// A uniform variate in `[0, 1)` from the top 53 bits of a derived seed.
fn unit_from(seed: u64) -> f64 {
    (seed >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// A standard-normal variate via Box–Muller over two derived uniforms.
fn gaussian_from(seed: u64) -> f64 {
    let u1 = unit_from(derive_seed(seed, 1)).max(f64::MIN_POSITIVE);
    let u2 = unit_from(derive_seed(seed, 2));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Per-arm statistics, updated only between waves.
#[derive(Clone, Debug)]
struct Arm {
    /// Committed pulls (finite-score pulls drive `mean`; failed pulls still
    /// count toward the pull total so a crashing arm cannot monopolize the
    /// schedule).
    pulls: usize,
    /// Next ladder level this arm runs at; `ladder.len()` = exhausted.
    level: usize,
    /// Running mean of finite observed scores.
    mean: f64,
    /// Number of finite observations behind `mean`.
    n_scored: usize,
}

/// The selection rules. Each is a pure function of committed statistics and
/// derived seeds, evaluated slot by slot within a wave (an arm already
/// chosen for the wave is ineligible for later slots — its statistics
/// cannot change until the wave commits).
enum Policy {
    Ucb { exploration: f64 },
    Thompson { prior_mean: f64, prior_std: f64 },
    EpsGreedy { epsilon: f64 },
}

impl Policy {
    /// Picks one arm among `eligible` (indices into `arms`, already filtered
    /// to non-exhausted arms not yet in the current wave). `t` is the total
    /// number of committed pulls; `slot_seed` keys this slot's randomness.
    fn select(&self, arms: &[Arm], eligible: &[usize], t: usize, slot_seed: u64) -> usize {
        match self {
            Policy::Ucb { exploration } => {
                // Unpulled arms first, in index order (the usual UCB
                // initialization); then the argmax of the confidence bound.
                if let Some(&a) = eligible.iter().find(|&&a| arms[a].pulls == 0) {
                    return a;
                }
                let ln_t = ((t.max(1)) as f64).ln();
                *eligible
                    .iter()
                    .max_by(|&&a, &&b| {
                        let ua = arms[a].mean + exploration * (ln_t / arms[a].pulls as f64).sqrt();
                        let ub = arms[b].mean + exploration * (ln_t / arms[b].pulls as f64).sqrt();
                        // max_by keeps the *last* maximum; reverse equal
                        // ties so the lowest index wins deterministically.
                        compare_scores(ua, ub).then(std::cmp::Ordering::Greater)
                    })
                    .expect("eligible is non-empty")
            }
            Policy::Thompson { prior_mean, prior_std } => {
                // Conjugate-style shrinkage posterior: mean pulls toward the
                // prior, spread narrows as 1/sqrt(n+1). Unpulled arms sample
                // the prior outright.
                *eligible
                    .iter()
                    .max_by(|&&a, &&b| {
                        let draw = |arm: usize| {
                            let st = &arms[arm];
                            let n = st.n_scored as f64;
                            let mean = (prior_mean + st.mean * n) / (n + 1.0);
                            let std = prior_std / (n + 1.0).sqrt();
                            mean + std * gaussian_from(derive_seed(slot_seed, arm as u64))
                        };
                        compare_scores(draw(a), draw(b)).then(std::cmp::Ordering::Greater)
                    })
                    .expect("eligible is non-empty")
            }
            Policy::EpsGreedy { epsilon } => {
                if let Some(&a) = eligible.iter().find(|&&a| arms[a].pulls == 0) {
                    return a;
                }
                if unit_from(derive_seed(slot_seed, 3)) < *epsilon {
                    let pick = (unit_from(derive_seed(slot_seed, 4)) * eligible.len() as f64)
                        as usize;
                    return eligible[pick.min(eligible.len() - 1)];
                }
                *eligible
                    .iter()
                    .max_by(|&&a, &&b| {
                        compare_scores(arms[a].mean, arms[b].mean)
                            .then(std::cmp::Ordering::Greater)
                    })
                    .expect("eligible is non-empty")
            }
        }
    }
}

/// The shared wave loop behind all three policies.
fn run_bandit<E: TrialEvaluator + ?Sized>(
    evaluator: &E,
    space: &SearchSpace,
    base_params: &MlpParams,
    config: &BanditConfig,
    policy: Policy,
    arm_salt: u64,
    stream: u64,
) -> BanditResult {
    assert!(config.eta >= 2, "eta must be at least 2");
    assert!(config.n_configs >= 1, "need at least one arm");
    assert!(config.batch >= 1, "need at least one pull per wave");

    let r_max = evaluator.total_budget();
    let r_min = config.min_budget.clamp(1, r_max);
    let ladder = rung::ladder(r_min, r_max, config.eta);

    let candidates = space.sample_distinct(config.n_configs, derive_seed(stream, arm_salt));
    let n_arms = candidates.len();

    let recorder = evaluator.recorder();
    // Bandits have no rung barriers; like ASHA, the entry level is the only
    // one with a known start, and ladder climbs are per-arm promotions.
    recorder.emit(RunEvent::RungStarted {
        bracket: 0,
        rung: 0,
        n_candidates: n_arms,
        budget: ladder[0],
    });

    let mut arms: Vec<Arm> = (0..n_arms)
        .map(|_| Arm {
            pulls: 0,
            level: 0,
            mean: 0.0,
            n_scored: 0,
        })
        .collect();
    let mut history = History::new();
    let mut best: Option<(Configuration, usize, f64)> = None;
    let mut pulls_done = 0usize;
    let mut wave_idx = 0u64;
    let cancel = evaluator.cancel_token();
    let select_root = derive_seed(stream, 0x5E1);

    while pulls_done < config.total_pulls {
        // Cooperative cancellation at the wave boundary: committed waves are
        // already journaled/checkpointed, so a resumed run replays them and
        // selects the identical next wave.
        if cancel.is_cancelled() {
            break;
        }
        // Select up to `batch` distinct non-exhausted arms from the
        // committed statistics.
        let mut wave: Vec<usize> = Vec::new();
        let slots = config.batch.min(config.total_pulls - pulls_done);
        for slot in 0..slots {
            let eligible: Vec<usize> = (0..n_arms)
                .filter(|&a| arms[a].level < ladder.len() && !wave.contains(&a))
                .collect();
            if eligible.is_empty() {
                break;
            }
            let slot_seed = derive_seed(select_root, wave_idx.wrapping_mul(64) + slot as u64);
            wave.push(policy.select(&arms, &eligible, pulls_done, slot_seed));
        }
        if wave.is_empty() {
            break;
        }
        for &a in &wave {
            if arms[a].level > 0 {
                // A repeat pull *is* the arm's promotion to the next budget.
                recorder.emit(RunEvent::Promotion {
                    bracket: 0,
                    from_rung: arms[a].level - 1,
                    to_rung: arms[a].level,
                    promoted: 1,
                    pruned: 0,
                });
            }
        }
        // One engine batch per wave; each arm's continuation key is stable
        // across pulls, so a level-l pull warm-starts from the snapshots its
        // level-l−1 pull deposited. A wave never holds the same arm twice,
        // so keys stay unique per batch.
        let jobs: Vec<TrialJob> = wave
            .iter()
            .map(|&a| {
                TrialJob::new(
                    space.to_params(&candidates[a], base_params),
                    ladder[arms[a].level],
                    evaluator.fold_stream(stream, arms[a].level as u64, a as u64),
                )
                .with_continuation(derive_seed(stream, CONTINUATION_KEY_SALT + a as u64))
                .with_values(space.trial_values(&candidates[a]))
            })
            .collect();
        let outcomes = evaluator.evaluate_batch(&jobs);
        for (&a, outcome) in wave.iter().zip(outcomes) {
            let level = arms[a].level;
            let budget = ladder[level];
            if outcome.score.is_finite() {
                let st = &mut arms[a];
                st.n_scored += 1;
                st.mean += (outcome.score - st.mean) / st.n_scored as f64;
            }
            arms[a].pulls += 1;
            arms[a].level += 1;
            pulls_done += 1;
            // NaN-safe "largest budget, then score" winner tracking, as in
            // Hyperband: a failed pull's imputed score only beats failures.
            let candidate_wins = best.as_ref().is_none_or(|(_, b, sc)| {
                budget > *b
                    || (budget == *b
                        && compare_scores(outcome.score, *sc) == std::cmp::Ordering::Greater)
            });
            if candidate_wins {
                best = Some((candidates[a].clone(), budget, outcome.score));
            }
            history.push(Trial {
                config: candidates[a].clone(),
                budget,
                rung: level,
                outcome,
            });
        }
        wave_idx += 1;
    }

    // `best` is Some unless the run was cancelled before any pull committed.
    BanditResult {
        best: best
            .map(|(cand, _, _)| cand)
            .unwrap_or_else(|| candidates[0].clone()),
        history,
    }
}

/// Runs UCB1 over sampled configuration arms.
pub fn ucb<E: TrialEvaluator + ?Sized>(
    evaluator: &E,
    space: &SearchSpace,
    base_params: &MlpParams,
    config: &UcbConfig,
    stream: u64,
) -> BanditResult {
    run_bandit(
        evaluator,
        space,
        base_params,
        &config.bandit,
        Policy::Ucb {
            exploration: config.exploration,
        },
        0x0CB1,
        stream,
    )
}

/// Runs Gaussian Thompson sampling over sampled configuration arms.
pub fn thompson<E: TrialEvaluator + ?Sized>(
    evaluator: &E,
    space: &SearchSpace,
    base_params: &MlpParams,
    config: &ThompsonConfig,
    stream: u64,
) -> BanditResult {
    run_bandit(
        evaluator,
        space,
        base_params,
        &config.bandit,
        Policy::Thompson {
            prior_mean: config.prior_mean,
            prior_std: config.prior_std,
        },
        0x7505,
        stream,
    )
}

/// Runs ε-greedy over sampled configuration arms.
pub fn epsgreedy<E: TrialEvaluator + ?Sized>(
    evaluator: &E,
    space: &SearchSpace,
    base_params: &MlpParams,
    config: &EpsGreedyConfig,
    stream: u64,
) -> BanditResult {
    run_bandit(
        evaluator,
        space,
        base_params,
        &config.bandit,
        Policy::EpsGreedy {
            epsilon: config.epsilon,
        },
        0xE95D,
        stream,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::CvEvaluator;
    use crate::pipeline::Pipeline;
    use hpo_data::synth::{make_classification, ClassificationSpec};

    fn dataset() -> hpo_data::dataset::Dataset {
        make_classification(
            &ClassificationSpec {
                n_instances: 240,
                n_features: 5,
                n_informative: 5,
                label_purity: 0.95,
                blob_spread: 0.3,
                ..Default::default()
            },
            1,
        )
    }

    fn quick_base() -> MlpParams {
        MlpParams {
            hidden_layer_sizes: vec![6],
            max_iter: 4,
            ..Default::default()
        }
    }

    fn quick_config() -> BanditConfig {
        BanditConfig {
            eta: 2,
            min_budget: 20,
            n_configs: 6,
            batch: 3,
            total_pulls: 12,
        }
    }

    #[test]
    fn ucb_pulls_every_arm_once_first() {
        let data = dataset();
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_base(), 1);
        let space = SearchSpace::mlp_cv18();
        let cfg = UcbConfig {
            bandit: quick_config(),
            ..Default::default()
        };
        let result = ucb(&ev, &space, &quick_base(), &cfg, 0);
        // The first 6 pulls are the forced initialization, one per arm.
        let first: Vec<_> = result.history.trials().iter().take(6).collect();
        let distinct: std::collections::HashSet<_> =
            first.iter().map(|t| t.config.clone()).collect();
        assert_eq!(distinct.len(), 6);
        assert_eq!(result.history.len(), 12);
        assert!(result.history.trials().iter().all(|t| t.budget >= 20));
    }

    #[test]
    fn repeat_pulls_climb_the_ladder() {
        let data = dataset();
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_base(), 2);
        let space = SearchSpace::mlp_cv18();
        let cfg = UcbConfig {
            bandit: quick_config(),
            ..Default::default()
        };
        let result = ucb(&ev, &space, &quick_base(), &cfg, 1);
        // ladder(20, 240, 2) = [20, 40, 80, 160, 240]
        for t in result.history.trials() {
            assert_eq!(t.budget, (20usize << t.rung).min(240));
        }
        assert!(result.history.trials().iter().any(|t| t.rung >= 1));
    }

    #[test]
    fn thompson_and_epsgreedy_are_deterministic_per_stream() {
        let data = dataset();
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_base(), 3);
        let space = SearchSpace::mlp_cv18();
        let tcfg = ThompsonConfig {
            bandit: quick_config(),
            ..Default::default()
        };
        let a = thompson(&ev, &space, &quick_base(), &tcfg, 7);
        let b = thompson(&ev, &space, &quick_base(), &tcfg, 7);
        assert_eq!(a.best, b.best);
        assert_eq!(a.history.len(), b.history.len());
        let ecfg = EpsGreedyConfig {
            bandit: quick_config(),
            ..Default::default()
        };
        let a = epsgreedy(&ev, &space, &quick_base(), &ecfg, 7);
        let b = epsgreedy(&ev, &space, &quick_base(), &ecfg, 7);
        assert_eq!(a.best, b.best);
        assert_eq!(a.history.len(), b.history.len());
    }

    #[test]
    fn run_stops_when_all_arms_exhaust_the_ladder() {
        let data = dataset();
        let ev = CvEvaluator::new(&data, Pipeline::vanilla(), quick_base(), 4);
        let space = SearchSpace::mlp_cv18();
        let cfg = EpsGreedyConfig {
            bandit: BanditConfig {
                eta: 2,
                min_budget: 120,
                n_configs: 2,
                batch: 2,
                total_pulls: 100,
            },
            epsilon: 0.2,
        };
        // ladder(120, 240, 2) = [120, 240]: 2 arms × 2 levels = 4 pulls max.
        let result = epsgreedy(&ev, &space, &quick_base(), &cfg, 2);
        assert_eq!(result.history.len(), 4);
    }
}
