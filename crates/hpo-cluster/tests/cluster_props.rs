//! Property tests for the clustering algorithms.

use hpo_cluster::balanced::{balanced_kmeans, BalancedKMeansConfig};
use hpo_cluster::kmeans::{inertia_of, kmeans, KMeansConfig};
use hpo_cluster::silhouette::silhouette_score;
use hpo_data::matrix::Matrix;
use proptest::prelude::*;

fn points(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-20.0f64..20.0, n * 2)
        .prop_map(move |v| Matrix::from_vec(n, 2, v).expect("shape matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// k-means centroids are no worse than random centroids (inertia-wise).
    #[test]
    fn kmeans_beats_arbitrary_assignment(x in points(40), seed in 0u64..100) {
        let k = 3;
        let result = kmeans(&x, &KMeansConfig { k, seed, max_iters: 15, ..Default::default() });
        // Compare with assigning everything to centroid 0.
        let all_zero = vec![0usize; 40];
        let baseline = inertia_of(&x, &all_zero, &result.centroids);
        prop_assert!(result.inertia <= baseline + 1e-9);
    }

    /// Balanced k-means always yields a partition with every label < k.
    #[test]
    fn balanced_kmeans_is_total(x in points(30), r_group in 0.0f64..0.95, seed in 0u64..50) {
        let result = balanced_kmeans(&x, &BalancedKMeansConfig {
            k: 3,
            r_group,
            seed,
            ..Default::default()
        });
        prop_assert_eq!(result.assignments.len(), 30);
        prop_assert!(result.assignments.iter().all(|&a| a < 3));
    }

    /// Silhouette, when defined, is in [-1, 1].
    #[test]
    fn silhouette_bounds(x in points(20), seed in 0u64..50) {
        let result = kmeans(&x, &KMeansConfig { k: 2, seed, ..Default::default() });
        if let Some(s) = silhouette_score(&x, &result.assignments) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "silhouette {}", s);
        }
    }

    /// More clusters never increase the optimal inertia (with shared seeds,
    /// allow small slack for local optima).
    #[test]
    fn inertia_decreases_with_k(x in points(30), seed in 0u64..20) {
        let i2 = kmeans(&x, &KMeansConfig { k: 2, seed, max_iters: 20, ..Default::default() }).inertia;
        let i6 = kmeans(&x, &KMeansConfig { k: 6, seed, max_iters: 20, ..Default::default() }).inertia;
        prop_assert!(i6 <= i2 * 1.2 + 1e-6, "k=6 inertia {} vs k=2 {}", i6, i2);
    }
}
