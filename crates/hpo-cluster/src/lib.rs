//! Clustering substrate for the grouping step (paper §III-A).
//!
//! The paper clusters instances by their features with k-means before the
//! HPO process starts, re-clustering whenever a cluster falls below
//! `r_group` of the average cluster size. This crate provides:
//!
//! * [`mod@kmeans`] — k-means with k-means++ seeding and Lloyd iterations.
//! * [`balanced`] — the paper's iterative "remove tiny clusters and
//!   re-cluster" loop.
//! * [`elbow`] — the elbow heuristic for choosing `v` (paper cites it as an
//!   alternative to the fixed `v ≤ 5`).
//! * [`meanshift`] / [`affinity`] — the two alternative clustering
//!   algorithms the paper names for the grouping step.
//! * [`silhouette`] — silhouette score diagnostics used in tests and benches.

#![warn(missing_docs)]

pub mod affinity;
pub mod balanced;
pub mod elbow;
pub mod kmeans;
pub mod meanshift;
pub mod silhouette;

pub use balanced::{balanced_kmeans, BalancedKMeansConfig};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
