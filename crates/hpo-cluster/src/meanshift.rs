//! Mean-shift clustering.
//!
//! The paper (§III-A) lists mean-shift as an alternative clustering
//! algorithm for the grouping step ("our method can employ various
//! clustering algorithms such as k-means, mean-shift, and affinity
//! propagation"). This is a flat-kernel implementation: every point climbs
//! to the mean of its bandwidth-neighbourhood until convergence; modes
//! closer than the bandwidth merge into one cluster.

use hpo_data::matrix::Matrix;

/// Configuration for [`mean_shift`].
#[derive(Clone, Debug)]
pub struct MeanShiftConfig {
    /// Kernel bandwidth (radius of the flat kernel). Use
    /// [`estimate_bandwidth`] when unsure.
    pub bandwidth: f64,
    /// Maximum hill-climbing iterations per point.
    pub max_iters: usize,
    /// Convergence threshold on the squared shift distance.
    pub tol: f64,
}

impl Default for MeanShiftConfig {
    fn default() -> Self {
        MeanShiftConfig {
            bandwidth: 1.0,
            max_iters: 50,
            tol: 1e-6,
        }
    }
}

/// Outcome of a mean-shift run.
#[derive(Clone, Debug)]
pub struct MeanShiftResult {
    /// Cluster assignment per input row.
    pub assignments: Vec<usize>,
    /// Cluster modes, one per row.
    pub modes: Matrix,
}

impl MeanShiftResult {
    /// Number of clusters discovered.
    pub fn n_clusters(&self) -> usize {
        self.modes.rows()
    }
}

/// Runs flat-kernel mean-shift on the rows of `x`.
///
/// O(n² · iters) — appropriate for the grouping step's dataset sizes (the
/// paper notes a data subsample suffices for clustering when `n` is large).
///
/// # Panics
/// Panics on an empty input or non-positive bandwidth.
pub fn mean_shift(x: &Matrix, config: &MeanShiftConfig) -> MeanShiftResult {
    assert!(x.rows() > 0, "cannot cluster zero points");
    assert!(config.bandwidth > 0.0, "bandwidth must be positive");
    let n = x.rows();
    let d = x.cols();
    let bw_sq = config.bandwidth * config.bandwidth;

    // Hill-climb every point to its mode.
    let mut points = x.clone();
    for i in 0..n {
        let mut current = points.row(i).to_vec();
        for _ in 0..config.max_iters {
            let mut mean = vec![0.0; d];
            let mut count = 0usize;
            for row in x.iter_rows() {
                if Matrix::dist_sq(&current, row) <= bw_sq {
                    for (m, &v) in mean.iter_mut().zip(row) {
                        *m += v;
                    }
                    count += 1;
                }
            }
            if count == 0 {
                break; // isolated point: it is its own mode
            }
            for m in mean.iter_mut() {
                *m /= count as f64;
            }
            let shift = Matrix::dist_sq(&current, &mean);
            current = mean;
            if shift < config.tol {
                break;
            }
        }
        points.row_mut(i).copy_from_slice(&current);
    }

    // Merge modes within one bandwidth of each other (first-come ordering).
    let mut modes: Vec<Vec<f64>> = Vec::new();
    let mut assignments = vec![0usize; n];
    for (i, slot) in assignments.iter_mut().enumerate() {
        let p = points.row(i);
        match modes.iter().position(|m| Matrix::dist_sq(m, p) <= bw_sq) {
            Some(c) => *slot = c,
            None => {
                *slot = modes.len();
                modes.push(p.to_vec());
            }
        }
    }
    let flat: Vec<f64> = modes.iter().flatten().copied().collect();
    let modes = Matrix::from_vec(modes.len(), d, flat).expect("modes stack cleanly");
    MeanShiftResult { assignments, modes }
}

/// Bandwidth heuristic: the mean distance of each point to its
/// `quantile`-th nearest neighbour (scikit-learn's `estimate_bandwidth`
/// idea, exact O(n²) variant).
///
/// Returns a small positive floor for degenerate (all-identical) inputs.
pub fn estimate_bandwidth(x: &Matrix, quantile: f64) -> f64 {
    assert!((0.0..=1.0).contains(&quantile), "quantile must be in [0,1]");
    let n = x.rows();
    if n < 2 {
        return 1.0;
    }
    let k = (((n - 1) as f64) * quantile).round().max(1.0) as usize;
    let mut total = 0.0;
    let mut dists = Vec::with_capacity(n - 1);
    for i in 0..n {
        dists.clear();
        let row_i = x.row(i);
        for (j, row_j) in x.iter_rows().enumerate() {
            if i != j {
                dists.push(Matrix::dist_sq(row_i, row_j));
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        total += dists[k.min(dists.len()) - 1].sqrt();
    }
    (total / n as f64).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::rng::{rng_from_seed, standard_normal};

    fn two_blobs(n_each: usize, sep: f64, seed: u64) -> Matrix {
        let mut rng = rng_from_seed(seed);
        let mut flat = Vec::with_capacity(n_each * 4);
        for c in 0..2 {
            for _ in 0..n_each {
                flat.push(c as f64 * sep + standard_normal(&mut rng) * 0.2);
                flat.push(standard_normal(&mut rng) * 0.2);
            }
        }
        Matrix::from_vec(n_each * 2, 2, flat).unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let x = two_blobs(40, 6.0, 1);
        let result = mean_shift(
            &x,
            &MeanShiftConfig {
                bandwidth: 1.5,
                ..Default::default()
            },
        );
        assert_eq!(result.n_clusters(), 2, "modes: {:?}", result.modes);
        // first 40 points share a cluster, last 40 the other
        let first = result.assignments[0];
        assert!(result.assignments[..40].iter().all(|&a| a == first));
        assert!(result.assignments[40..].iter().all(|&a| a != first));
    }

    #[test]
    fn huge_bandwidth_gives_one_cluster() {
        let x = two_blobs(20, 3.0, 2);
        let result = mean_shift(
            &x,
            &MeanShiftConfig {
                bandwidth: 100.0,
                ..Default::default()
            },
        );
        assert_eq!(result.n_clusters(), 1);
    }

    #[test]
    fn tiny_bandwidth_isolates_points() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 0.0], &[0.0, 5.0]]);
        let result = mean_shift(
            &x,
            &MeanShiftConfig {
                bandwidth: 0.1,
                ..Default::default()
            },
        );
        assert_eq!(result.n_clusters(), 3);
    }

    #[test]
    fn bandwidth_estimate_scales_with_separation() {
        let near = estimate_bandwidth(&two_blobs(30, 2.0, 3), 0.3);
        let far = estimate_bandwidth(&two_blobs(30, 20.0, 3), 0.3);
        assert!(
            far > near,
            "estimate should grow with spread: {near} vs {far}"
        );
        assert!(near > 0.0);
    }

    #[test]
    fn estimated_bandwidth_recovers_blobs() {
        let x = two_blobs(30, 8.0, 4);
        let bw = estimate_bandwidth(&x, 0.3);
        let result = mean_shift(
            &x,
            &MeanShiftConfig {
                bandwidth: bw,
                ..Default::default()
            },
        );
        assert!(
            (2..=4).contains(&result.n_clusters()),
            "clusters: {}",
            result.n_clusters()
        );
    }

    #[test]
    fn degenerate_inputs() {
        let single = Matrix::from_rows(&[&[1.0, 2.0]]);
        let r = mean_shift(&single, &MeanShiftConfig::default());
        assert_eq!(r.n_clusters(), 1);
        assert_eq!(estimate_bandwidth(&single, 0.3), 1.0);
        let identical = Matrix::full(5, 2, 3.0);
        let r = mean_shift(&identical, &MeanShiftConfig::default());
        assert_eq!(r.n_clusters(), 1);
    }
}
