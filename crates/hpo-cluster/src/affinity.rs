//! Affinity propagation clustering (Frey & Dueck, Science 2007).
//!
//! The third clustering option the paper lists for the grouping step.
//! Exchanges *responsibility* and *availability* messages between points
//! until a set of exemplars emerges; the cluster count is controlled by the
//! self-similarity *preference* rather than an explicit `k`.

use hpo_data::matrix::Matrix;

/// Configuration for [`affinity_propagation`].
#[derive(Clone, Debug)]
pub struct AffinityConfig {
    /// Message damping factor in `[0.5, 1)`. Default 0.7 — plain 0.5 can
    /// oscillate for hundreds of iterations on blob-structured data.
    pub damping: f64,
    /// Maximum message-passing iterations.
    pub max_iters: usize,
    /// Iterations of unchanged exemplars before declaring convergence.
    pub convergence_iters: usize,
    /// Self-similarity preference; `None` uses the median similarity
    /// (the standard default, yielding a moderate cluster count).
    pub preference: Option<f64>,
}

impl Default for AffinityConfig {
    fn default() -> Self {
        AffinityConfig {
            damping: 0.7,
            max_iters: 200,
            convergence_iters: 15,
            preference: None,
        }
    }
}

/// Outcome of an affinity-propagation run.
#[derive(Clone, Debug)]
pub struct AffinityResult {
    /// Cluster assignment per input row.
    pub assignments: Vec<usize>,
    /// Row indices of the exemplars, one per cluster.
    pub exemplars: Vec<usize>,
    /// Message-passing iterations performed.
    pub iterations: usize,
}

impl AffinityResult {
    /// Number of clusters discovered.
    pub fn n_clusters(&self) -> usize {
        self.exemplars.len()
    }
}

/// Runs affinity propagation with negative-squared-Euclidean similarities.
///
/// O(n² · iters) in time and O(n²) in memory — appropriate for grouping-step
/// sizes (subsample large datasets first, as the paper suggests for
/// clustering).
///
/// # Panics
/// Panics on empty input or damping outside `[0.5, 1)`.
pub fn affinity_propagation(x: &Matrix, config: &AffinityConfig) -> AffinityResult {
    assert!(x.rows() > 0, "cannot cluster zero points");
    assert!(
        (0.5..1.0).contains(&config.damping),
        "damping must be in [0.5, 1)"
    );
    let n = x.rows();
    if n == 1 {
        return AffinityResult {
            assignments: vec![0],
            exemplars: vec![0],
            iterations: 0,
        };
    }

    // Similarity matrix: s(i,k) = -||x_i - x_k||².
    let mut s = vec![0.0f64; n * n];
    for i in 0..n {
        for k in 0..n {
            s[i * n + k] = -Matrix::dist_sq(x.row(i), x.row(k));
        }
    }
    // Break symmetry with a tiny deterministic jitter (the standard fix for
    // AP's message oscillation on symmetric inputs; scikit-learn does the
    // same with random noise).
    let scale = s.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-12);
    let mut jitter_state = 0x9E37_79B9u64;
    for v in s.iter_mut() {
        jitter_state = jitter_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (jitter_state >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        *v += scale * 1e-9 * u;
    }
    // Preference on the diagonal.
    let pref = config.preference.unwrap_or_else(|| {
        let mut off: Vec<f64> = (0..n)
            .flat_map(|i| (0..n).filter(move |&k| k != i).map(move |k| (i, k)))
            .map(|(i, k)| s[i * n + k])
            .collect();
        off.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        off[off.len() / 2]
    });
    for i in 0..n {
        s[i * n + i] = pref;
    }

    let mut r = vec![0.0f64; n * n]; // responsibilities
    let mut a = vec![0.0f64; n * n]; // availabilities
    let damp = config.damping;
    let mut last_exemplars: Vec<usize> = Vec::new();
    let mut stable = 0usize;
    let mut iterations = 0usize;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Responsibilities: r(i,k) = s(i,k) − max_{k'≠k} (a(i,k') + s(i,k')).
        for i in 0..n {
            // top-2 of a+s over k'
            let (mut max1, mut max1_k, mut max2) = (f64::NEG_INFINITY, 0usize, f64::NEG_INFINITY);
            for k in 0..n {
                let v = a[i * n + k] + s[i * n + k];
                if v > max1 {
                    max2 = max1;
                    max1 = v;
                    max1_k = k;
                } else if v > max2 {
                    max2 = v;
                }
            }
            for k in 0..n {
                let competitor = if k == max1_k { max2 } else { max1 };
                let new_r = s[i * n + k] - competitor;
                r[i * n + k] = damp * r[i * n + k] + (1.0 - damp) * new_r;
            }
        }
        // Availabilities: a(i,k) = min(0, r(k,k) + Σ_{i'∉{i,k}} max(0, r(i',k)))
        // and a(k,k) = Σ_{i'≠k} max(0, r(i',k)).
        for k in 0..n {
            let mut pos_sum = 0.0;
            for i in 0..n {
                if i != k {
                    pos_sum += r[i * n + k].max(0.0);
                }
            }
            for i in 0..n {
                let new_a = if i == k {
                    pos_sum
                } else {
                    (r[k * n + k] + pos_sum - r[i * n + k].max(0.0)).min(0.0)
                };
                a[i * n + k] = damp * a[i * n + k] + (1.0 - damp) * new_a;
            }
        }
        // Exemplars: points where r(k,k) + a(k,k) > 0.
        let exemplars: Vec<usize> = (0..n)
            .filter(|&k| r[k * n + k] + a[k * n + k] > 0.0)
            .collect();
        if exemplars == last_exemplars && !exemplars.is_empty() {
            stable += 1;
            if stable >= config.convergence_iters {
                break;
            }
        } else {
            stable = 0;
            last_exemplars = exemplars;
        }
    }

    let mut exemplars = last_exemplars;
    if exemplars.is_empty() {
        // No point self-elected (can happen with extreme preferences):
        // fall back to the point with the largest self-evidence.
        let best = (0..n)
            .max_by(|&p, &q| {
                (r[p * n + p] + a[p * n + p])
                    .partial_cmp(&(r[q * n + q] + a[q * n + q]))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("n >= 1");
        exemplars = vec![best];
    }

    // Assign every point to its most similar exemplar; exemplars to themselves.
    let assignments: Vec<usize> = (0..n)
        .map(|i| {
            if let Some(pos) = exemplars.iter().position(|&e| e == i) {
                return pos;
            }
            exemplars
                .iter()
                .enumerate()
                .max_by(|(_, &e1), (_, &e2)| {
                    s[i * n + e1]
                        .partial_cmp(&s[i * n + e2])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(pos, _)| pos)
                .expect("exemplars non-empty")
        })
        .collect();

    AffinityResult {
        assignments,
        exemplars,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::rng::{rng_from_seed, standard_normal};

    fn blobs(centers: &[(f64, f64)], n_each: usize, seed: u64) -> Matrix {
        let mut rng = rng_from_seed(seed);
        let mut flat = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..n_each {
                flat.push(cx + standard_normal(&mut rng) * 0.2);
                flat.push(cy + standard_normal(&mut rng) * 0.2);
            }
        }
        Matrix::from_vec(centers.len() * n_each, 2, flat).unwrap()
    }

    #[test]
    fn recovers_three_blobs() {
        let x = blobs(&[(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)], 15, 1);
        let result = affinity_propagation(&x, &AffinityConfig::default());
        assert_eq!(result.n_clusters(), 3, "exemplars: {:?}", result.exemplars);
        // points of one blob share an assignment
        for b in 0..3 {
            let first = result.assignments[b * 15];
            assert!(
                result.assignments[b * 15..(b + 1) * 15]
                    .iter()
                    .all(|&a| a == first),
                "blob {b} split: {:?}",
                &result.assignments[b * 15..(b + 1) * 15]
            );
        }
    }

    #[test]
    fn low_preference_gives_fewer_clusters() {
        let x = blobs(&[(0.0, 0.0), (6.0, 0.0), (0.0, 6.0)], 10, 2);
        let many = affinity_propagation(
            &x,
            &AffinityConfig {
                preference: Some(-0.5),
                ..Default::default()
            },
        );
        let few = affinity_propagation(
            &x,
            &AffinityConfig {
                preference: Some(-500.0),
                ..Default::default()
            },
        );
        assert!(
            few.n_clusters() <= many.n_clusters(),
            "{} vs {}",
            few.n_clusters(),
            many.n_clusters()
        );
        assert!(few.n_clusters() >= 1);
    }

    #[test]
    fn exemplars_assign_to_themselves() {
        let x = blobs(&[(0.0, 0.0), (10.0, 10.0)], 8, 3);
        let result = affinity_propagation(&x, &AffinityConfig::default());
        for (pos, &e) in result.exemplars.iter().enumerate() {
            assert_eq!(result.assignments[e], pos);
        }
    }

    #[test]
    fn single_point_is_its_own_cluster() {
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let result = affinity_propagation(&x, &AffinityConfig::default());
        assert_eq!(result.n_clusters(), 1);
        assert_eq!(result.assignments, vec![0]);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let x = Matrix::zeros(3, 2);
        affinity_propagation(
            &x,
            &AffinityConfig {
                damping: 0.3,
                ..Default::default()
            },
        );
    }
}
