//! k-means clustering with k-means++ seeding and Lloyd iterations.
//!
//! The paper defaults to 10 Lloyd iterations (§III-E's cost analysis assumes
//! this), which [`KMeansConfig::default`] mirrors.

use hpo_data::matrix::Matrix;
use hpo_data::rng::rng_from_seed;
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration for [`kmeans`].
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Number of clusters `v`.
    pub k: usize,
    /// Maximum Lloyd iterations (paper default: 10).
    pub max_iters: usize,
    /// Convergence threshold on the relative inertia improvement.
    pub tol: f64,
    /// RNG seed for the k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 3,
            max_iters: 10,
            tol: 1e-6,
            seed: 0,
        }
    }
}

/// Outcome of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster assignment per row of the input.
    pub assignments: Vec<usize>,
    /// Final centroids, one per row.
    pub centroids: Matrix,
    /// Final inertia (sum of squared distances to assigned centroids).
    pub inertia: f64,
    /// Lloyd iterations actually performed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Instance count per cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.rows()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Runs k-means on the rows of `x`.
///
/// Uses k-means++ seeding, then Lloyd iterations until `max_iters` or the
/// relative inertia improvement drops below `tol`. Clusters that become empty
/// are re-seeded with the point farthest from its assigned centroid, so the
/// result always has exactly `k` non-degenerate centroids when `x.rows() >= k`.
///
/// # Panics
/// Panics if `k == 0` or `x` has fewer rows than `k`.
pub fn kmeans(x: &Matrix, config: &KMeansConfig) -> KMeansResult {
    let n = x.rows();
    let k = config.k;
    assert!(k >= 1, "k must be positive");
    assert!(n >= k, "cannot form {k} clusters from {n} points");

    let mut rng = rng_from_seed(config.seed);
    let mut centroids = plus_plus_init(x, k, &mut rng);
    let mut assignments = vec![0usize; n];
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;

    for iter in 0..config.max_iters.max(1) {
        iterations = iter + 1;
        // Assignment step.
        let mut new_inertia = 0.0;
        for (i, row) in x.iter_rows().enumerate() {
            let (best, dist) = nearest_centroid(row, &centroids);
            assignments[i] = best;
            new_inertia += dist;
        }
        // Update step.
        let mut sums = Matrix::zeros(k, x.cols());
        let mut counts = vec![0usize; k];
        for (i, row) in x.iter_rows().enumerate() {
            let a = assignments[i];
            counts[a] += 1;
            for (s, &v) in sums.row_mut(a).iter_mut().zip(row) {
                *s += v;
            }
        }
        #[allow(clippy::needless_range_loop)] // indexes counts, centroids and sums together
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the point farthest from its
                // current centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = Matrix::dist_sq(x.row(a), centroids.row(assignments[a]));
                        let db = Matrix::dist_sq(x.row(b), centroids.row(assignments[b]));
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("n >= k >= 1");
                centroids.row_mut(c).copy_from_slice(x.row(far));
            } else {
                let inv = 1.0 / counts[c] as f64;
                for (cv, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *cv = s * inv;
                }
            }
        }
        // Convergence check on relative improvement.
        let converged =
            inertia.is_finite() && (inertia - new_inertia).abs() <= config.tol * inertia.max(1e-12);
        inertia = new_inertia;
        if converged {
            break;
        }
    }

    // Final assignment against the converged centroids.
    let mut final_inertia = 0.0;
    for (i, row) in x.iter_rows().enumerate() {
        let (best, dist) = nearest_centroid(row, &centroids);
        assignments[i] = best;
        final_inertia += dist;
    }

    KMeansResult {
        assignments,
        centroids,
        inertia: final_inertia,
        iterations,
    }
}

/// k-means++ seeding: first center uniform, subsequent centers with
/// probability proportional to squared distance to the nearest chosen center.
fn plus_plus_init(x: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    let n = x.rows();
    let mut centroids = Matrix::zeros(k, x.cols());
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(x.row(first));

    let mut dist_sq: Vec<f64> = x
        .iter_rows()
        .map(|row| Matrix::dist_sq(row, centroids.row(0)))
        .collect();

    for c in 1..k {
        let total: f64 = dist_sq.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centers; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centroids.row_mut(c).copy_from_slice(x.row(chosen));
        for (i, row) in x.iter_rows().enumerate() {
            let d = Matrix::dist_sq(row, centroids.row(c));
            if d < dist_sq[i] {
                dist_sq[i] = d;
            }
        }
    }
    centroids
}

/// Index of and squared distance to the nearest centroid.
#[inline]
fn nearest_centroid(row: &[f64], centroids: &Matrix) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (c, center) in centroids.iter_rows().enumerate() {
        let d = Matrix::dist_sq(row, center);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Computes the inertia of an arbitrary assignment (used by tests/benches).
pub fn inertia_of(x: &Matrix, assignments: &[usize], centroids: &Matrix) -> f64 {
    x.iter_rows()
        .zip(assignments)
        .map(|(row, &a)| Matrix::dist_sq(row, centroids.row(a)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::synth::{make_classification, ClassificationSpec};

    fn blobs(n: usize, k: usize, seed: u64) -> Matrix {
        let spec = ClassificationSpec {
            n_instances: n,
            n_features: 4,
            n_informative: 4,
            n_classes: 2,
            n_blobs: k,
            label_purity: 1.0,
            label_noise: 0.0,
            blob_spread: 0.15,
            ..Default::default()
        };
        make_classification(&spec, seed).x().clone()
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let x = blobs(300, 3, 1);
        let result = kmeans(
            &x,
            &KMeansConfig {
                k: 3,
                max_iters: 30,
                ..Default::default()
            },
        );
        let sizes = result.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 300);
        assert!(
            sizes.iter().all(|&s| s > 30),
            "blob recovery failed: {sizes:?}"
        );
    }

    #[test]
    fn inertia_never_increases_with_more_iterations() {
        let x = blobs(200, 4, 2);
        let short = kmeans(
            &x,
            &KMeansConfig {
                k: 4,
                max_iters: 1,
                seed: 5,
                ..Default::default()
            },
        );
        let long = kmeans(
            &x,
            &KMeansConfig {
                k: 4,
                max_iters: 20,
                seed: 5,
                ..Default::default()
            },
        );
        assert!(long.inertia <= short.inertia + 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = blobs(150, 3, 3);
        let cfg = KMeansConfig {
            k: 3,
            seed: 9,
            ..Default::default()
        };
        let a = kmeans(&x, &cfg);
        let b = kmeans(&x, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.0], &[10.0, 0.0]]);
        let result = kmeans(
            &x,
            &KMeansConfig {
                k: 3,
                max_iters: 10,
                ..Default::default()
            },
        );
        assert!(result.inertia < 1e-9, "inertia {}", result.inertia);
        let mut sizes = result.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 1]);
    }

    #[test]
    fn k_one_centroid_is_the_mean() {
        let x = Matrix::from_rows(&[&[0.0], &[2.0], &[4.0]]);
        let result = kmeans(
            &x,
            &KMeansConfig {
                k: 1,
                max_iters: 5,
                ..Default::default()
            },
        );
        assert!((result.centroids[(0, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn identical_points_dont_crash() {
        let x = Matrix::full(10, 3, 1.5);
        let result = kmeans(
            &x,
            &KMeansConfig {
                k: 3,
                max_iters: 10,
                ..Default::default()
            },
        );
        assert_eq!(result.assignments.len(), 10);
        assert!(result.inertia < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot form")]
    fn more_clusters_than_points_panics() {
        let x = Matrix::zeros(2, 2);
        kmeans(
            &x,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
    }

    #[test]
    fn inertia_of_matches_result() {
        let x = blobs(100, 2, 7);
        let r = kmeans(
            &x,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        let recomputed = inertia_of(&x, &r.assignments, &r.centroids);
        assert!((recomputed - r.inertia).abs() < 1e-9);
    }
}
