//! Silhouette score for clustering quality diagnostics.
//!
//! Used in tests and in the clustering micro-benchmarks to check that the
//! balanced re-clustering loop does not destroy cluster quality.

use hpo_data::matrix::Matrix;

/// Mean silhouette coefficient over all points.
///
/// For each point: `s = (b - a) / max(a, b)` where `a` is the mean distance
/// to points of its own cluster and `b` the smallest mean distance to another
/// cluster. Points in singleton clusters score 0, matching scikit-learn.
///
/// Returns `None` when there are fewer than 2 clusters or fewer than 2 points.
///
/// This is the O(n²) exact computation — fine for the dataset sizes the
/// diagnostics run on.
pub fn silhouette_score(x: &Matrix, assignments: &[usize]) -> Option<f64> {
    let n = x.rows();
    if n < 2 || assignments.len() != n {
        return None;
    }
    let k = assignments.iter().copied().max()? + 1;
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }
    if sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return None;
    }

    let mut total = 0.0;
    // Reuse one distance accumulator per point to avoid re-allocating.
    let mut sums = vec![0.0f64; k];
    for i in 0..n {
        sums.iter_mut().for_each(|s| *s = 0.0);
        let row_i = x.row(i);
        for (j, row_j) in x.iter_rows().enumerate() {
            if i == j {
                continue;
            }
            sums[assignments[j]] += Matrix::dist_sq(row_i, row_j).sqrt();
        }
        let own = assignments[i];
        if sizes[own] <= 1 {
            continue; // singleton contributes 0
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    Some(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_scores_near_one() {
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, 0.0],
            &[0.0, 0.1],
            &[100.0, 100.0],
            &[100.1, 100.0],
            &[100.0, 100.1],
        ]);
        let s = silhouette_score(&x, &[0, 0, 0, 1, 1, 1]).unwrap();
        assert!(s > 0.95, "score {s}");
    }

    #[test]
    fn random_assignment_scores_low() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.1, 0.0], &[100.0, 100.0], &[100.1, 100.0]]);
        // Deliberately mixed-up assignment.
        let s = silhouette_score(&x, &[0, 1, 0, 1]).unwrap();
        assert!(s < 0.1, "score {s}");
    }

    #[test]
    fn degenerate_inputs_return_none() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        assert!(silhouette_score(&x, &[0, 0]).is_none()); // one cluster
        let single = Matrix::from_rows(&[&[1.0]]);
        assert!(silhouette_score(&single, &[0]).is_none()); // one point
        assert!(silhouette_score(&x, &[0]).is_none()); // length mismatch
    }

    #[test]
    fn singleton_cluster_contributes_zero() {
        let x = Matrix::from_rows(&[&[0.0], &[0.1], &[50.0]]);
        let s = silhouette_score(&x, &[0, 0, 1]).unwrap();
        // Two good points with s≈1, one singleton with s=0 → mean ≈ 2/3.
        assert!((s - 2.0 / 3.0).abs() < 0.05, "score {s}");
    }
}
