//! Balanced re-clustering (paper §III-A).
//!
//! The paper's grouping step avoids tiny clusters, which would starve the
//! subsequent fold construction: *"If a particular cluster has very few
//! instances (less than `r_group` ratio of the average number of instances
//! per cluster, `n/k × r_group`), we remove these instances and re-cluster
//! the rest until each cluster has the desired number of instances."* The
//! removed instances are finally attached to their nearest surviving
//! centroid so the output is a full partition.

use crate::kmeans::{kmeans, KMeansConfig};
use hpo_data::matrix::Matrix;
use hpo_data::rng::derive_seed;

/// Configuration for [`balanced_kmeans`].
#[derive(Clone, Debug)]
pub struct BalancedKMeansConfig {
    /// Number of clusters `v` (paper recommends 2–5).
    pub k: usize,
    /// Minimum cluster size as a fraction of the average size `n/k`
    /// (the paper's `r_group`; experiments use 0.8).
    pub r_group: f64,
    /// Maximum number of remove-and-recluster rounds before accepting the
    /// current clustering as-is.
    pub max_rounds: usize,
    /// Lloyd iterations per round (paper default: 10).
    pub max_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BalancedKMeansConfig {
    fn default() -> Self {
        BalancedKMeansConfig {
            k: 3,
            r_group: 0.8,
            max_rounds: 5,
            max_iters: 10,
            seed: 0,
        }
    }
}

/// Result of balanced clustering: a full partition of all input rows.
#[derive(Clone, Debug)]
pub struct BalancedKMeansResult {
    /// Cluster assignment per input row (every row is assigned).
    pub assignments: Vec<usize>,
    /// Final centroids.
    pub centroids: Matrix,
    /// Remove-and-recluster rounds performed (1 = first clustering was
    /// already balanced).
    pub rounds: usize,
    /// Number of instances that were set aside during re-clustering and
    /// re-attached to their nearest centroid at the end.
    pub reattached: usize,
}

impl BalancedKMeansResult {
    /// Instance count per cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.rows()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Runs the paper's iterative balanced k-means.
///
/// Rounds of k-means are run on a shrinking "core" of instances: after each
/// round, instances in clusters smaller than `r_group × n_core/k` are set
/// aside and the rest are re-clustered. Once every cluster passes the size
/// check (or `max_rounds` is hit), set-aside instances are assigned to their
/// nearest final centroid. The output is therefore always a partition of all
/// `x.rows()` instances into exactly `k` clusters.
///
/// # Panics
/// Panics if `k == 0`, `x.rows() < k`, or `r_group` is not in `[0, 1)`.
pub fn balanced_kmeans(x: &Matrix, config: &BalancedKMeansConfig) -> BalancedKMeansResult {
    assert!(config.k >= 1, "k must be positive");
    assert!(
        (0.0..1.0).contains(&config.r_group),
        "r_group must be in [0,1)"
    );
    assert!(
        x.rows() >= config.k,
        "cannot form {} clusters from {} points",
        config.k,
        x.rows()
    );

    let n = x.rows();
    let mut core: Vec<usize> = (0..n).collect();
    let mut removed: Vec<usize> = Vec::new();
    let mut rounds = 0usize;
    let mut last = None;

    for round in 0..config.max_rounds.max(1) {
        rounds = round + 1;
        let sub = x.select_rows(&core);
        let km = kmeans(
            &sub,
            &KMeansConfig {
                k: config.k,
                max_iters: config.max_iters,
                tol: 1e-6,
                seed: derive_seed(config.seed, round as u64),
            },
        );
        let sizes = {
            let mut s = vec![0usize; config.k];
            for &a in &km.assignments {
                s[a] += 1;
            }
            s
        };
        let threshold = (core.len() as f64 / config.k as f64) * config.r_group;
        let small: Vec<usize> = (0..config.k)
            .filter(|&c| (sizes[c] as f64) < threshold)
            .collect();

        if small.is_empty() || round + 1 == config.max_rounds.max(1) {
            last = Some((km, core.clone()));
            break;
        }

        // Set aside members of small clusters and re-cluster the rest —
        // unless that would leave fewer points than clusters.
        let keep: Vec<usize> = core
            .iter()
            .enumerate()
            .filter(|&(i, _)| !small.contains(&km.assignments[i]))
            .map(|(_, &orig)| orig)
            .collect();
        if keep.len() < config.k {
            last = Some((km, core.clone()));
            break;
        }
        removed.extend(core.iter().enumerate().filter_map(|(i, &orig)| {
            if small.contains(&km.assignments[i]) {
                Some(orig)
            } else {
                None
            }
        }));
        core = keep;
    }

    let (km, core) = last.expect("loop always sets a result");

    // Stitch the partition back together: core rows keep their assignment,
    // removed rows attach to the nearest final centroid.
    let mut assignments = vec![0usize; n];
    for (i, &orig) in core.iter().enumerate() {
        assignments[orig] = km.assignments[i];
    }
    for &orig in &removed {
        let row = x.row(orig);
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, center) in km.centroids.iter_rows().enumerate() {
            let d = Matrix::dist_sq(row, center);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        assignments[orig] = best;
    }

    BalancedKMeansResult {
        assignments,
        centroids: km.centroids,
        rounds,
        reattached: removed.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::rng::{rng_from_seed, standard_normal};
    use rand::Rng;

    /// Two big blobs plus a handful of outliers that form a tiny third
    /// cluster under plain k-means.
    fn blob_with_outliers(seed: u64) -> Matrix {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::new();
        for _ in 0..100 {
            rows.push(vec![
                standard_normal(&mut rng) * 0.3,
                standard_normal(&mut rng) * 0.3,
            ]);
        }
        for _ in 0..100 {
            rows.push(vec![
                5.0 + standard_normal(&mut rng) * 0.3,
                standard_normal(&mut rng) * 0.3,
            ]);
        }
        for _ in 0..4 {
            rows.push(vec![
                2.5 + rng.gen::<f64>() * 0.1,
                40.0 + rng.gen::<f64>() * 0.1,
            ]);
        }
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        Matrix::from_vec(rows.len(), 2, flat).unwrap()
    }

    #[test]
    fn output_is_a_full_partition() {
        let x = blob_with_outliers(1);
        let r = balanced_kmeans(
            &x,
            &BalancedKMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert_eq!(r.assignments.len(), x.rows());
        assert!(r.assignments.iter().all(|&a| a < 3));
        assert_eq!(r.cluster_sizes().iter().sum::<usize>(), x.rows());
    }

    #[test]
    fn tiny_clusters_trigger_reclustering() {
        let x = blob_with_outliers(2);
        let r = balanced_kmeans(
            &x,
            &BalancedKMeansConfig {
                k: 3,
                r_group: 0.8,
                ..Default::default()
            },
        );
        // The 4 outliers cannot sustain a cluster of their own at r_group=0.8
        // (threshold ≈ 0.8 * 204/3 ≈ 54), so at least one re-cluster round
        // must have happened or the outliers were reattached.
        assert!(
            r.rounds > 1 || r.reattached > 0 || r.cluster_sizes().iter().all(|&s| s >= 54),
            "expected rebalancing activity: rounds={} reattached={} sizes={:?}",
            r.rounds,
            r.reattached,
            r.cluster_sizes()
        );
    }

    #[test]
    fn balanced_dataset_converges_in_one_round() {
        // Three clean equal blobs: first clustering passes the size check.
        let mut rng = rng_from_seed(3);
        let mut flat = Vec::new();
        for c in 0..3 {
            for _ in 0..50 {
                flat.push(c as f64 * 10.0 + standard_normal(&mut rng) * 0.2);
                flat.push(standard_normal(&mut rng) * 0.2);
            }
        }
        let x = Matrix::from_vec(150, 2, flat).unwrap();
        let r = balanced_kmeans(
            &x,
            &BalancedKMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert_eq!(r.rounds, 1);
        assert_eq!(r.reattached, 0);
        let sizes = r.cluster_sizes();
        assert!(sizes.iter().all(|&s| s == 50), "sizes {sizes:?}");
    }

    #[test]
    fn r_group_zero_degenerates_to_plain_kmeans() {
        let x = blob_with_outliers(4);
        let r = balanced_kmeans(
            &x,
            &BalancedKMeansConfig {
                k: 3,
                r_group: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(r.rounds, 1);
        assert_eq!(r.reattached, 0);
    }

    #[test]
    fn respects_max_rounds() {
        let x = blob_with_outliers(5);
        let r = balanced_kmeans(
            &x,
            &BalancedKMeansConfig {
                k: 3,
                r_group: 0.99, // nearly impossible to satisfy
                max_rounds: 2,
                ..Default::default()
            },
        );
        assert!(r.rounds <= 2);
        assert_eq!(r.assignments.len(), x.rows());
    }

    #[test]
    #[should_panic(expected = "r_group")]
    fn rejects_r_group_of_one() {
        let x = Matrix::zeros(10, 2);
        balanced_kmeans(
            &x,
            &BalancedKMeansConfig {
                k: 2,
                r_group: 1.0,
                ..Default::default()
            },
        );
    }
}
