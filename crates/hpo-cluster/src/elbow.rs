//! Elbow heuristic for choosing the cluster count `v`.
//!
//! The paper (§III-B) notes that strategies like the elbow method can pick
//! `v` automatically but chooses a fixed `v ≤ 5` so the fold count stays at
//! the conventional 5. We provide the heuristic anyway: it is used by the
//! ablation benches and lets downstream users pick `v` data-dependently.

use crate::kmeans::{kmeans, KMeansConfig};
use hpo_data::matrix::Matrix;

/// Inertia for each candidate `k` in `ks` (in order).
pub fn inertia_curve(x: &Matrix, ks: &[usize], seed: u64, max_iters: usize) -> Vec<f64> {
    ks.iter()
        .map(|&k| {
            kmeans(
                x,
                &KMeansConfig {
                    k,
                    max_iters,
                    tol: 1e-6,
                    seed,
                },
            )
            .inertia
        })
        .collect()
}

/// Picks the elbow of an inertia curve by maximum distance to the chord
/// between the first and last points (the "kneedle" construction).
///
/// Returns the index into `ks`/`inertias`; `None` when fewer than 3 points.
pub fn elbow_index(ks: &[usize], inertias: &[f64]) -> Option<usize> {
    if ks.len() != inertias.len() || ks.len() < 3 {
        return None;
    }
    let (x0, y0) = (ks[0] as f64, inertias[0]);
    let (x1, y1) = (*ks.last().unwrap() as f64, *inertias.last().unwrap());
    let dx = x1 - x0;
    let dy = y1 - y0;
    let norm = (dx * dx + dy * dy).sqrt();
    if norm <= 0.0 {
        return Some(0);
    }
    let mut best = 0usize;
    let mut best_dist = f64::NEG_INFINITY;
    for (i, (&k, &inertia)) in ks.iter().zip(inertias).enumerate() {
        // Perpendicular distance from (k, inertia) to the chord.
        let d = ((k as f64 - x0) * dy - (inertia - y0) * dx).abs() / norm;
        if d > best_dist {
            best_dist = d;
            best = i;
        }
    }
    Some(best)
}

/// Runs the full elbow selection: clusters for each `k` in `ks`, returns the
/// chosen `k`. Falls back to the first candidate when the curve is too short.
pub fn select_k_elbow(x: &Matrix, ks: &[usize], seed: u64) -> usize {
    assert!(!ks.is_empty(), "candidate list must be non-empty");
    let inertias = inertia_curve(x, ks, seed, 10);
    match elbow_index(ks, &inertias) {
        Some(i) => ks[i],
        None => ks[0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::rng::{rng_from_seed, standard_normal};

    fn three_blobs() -> Matrix {
        let mut rng = rng_from_seed(1);
        let mut flat = Vec::new();
        for c in 0..3 {
            for _ in 0..60 {
                flat.push((c as f64) * 8.0 + standard_normal(&mut rng) * 0.3);
                flat.push((c as f64) * -4.0 + standard_normal(&mut rng) * 0.3);
            }
        }
        Matrix::from_vec(180, 2, flat).unwrap()
    }

    #[test]
    fn inertia_curve_decreases() {
        let x = three_blobs();
        let ks = [1, 2, 3, 4, 5];
        let curve = inertia_curve(&x, &ks, 0, 15);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] * 1.05, "curve not decreasing: {curve:?}");
        }
    }

    #[test]
    fn elbow_finds_the_true_k_on_clean_blobs() {
        let x = three_blobs();
        let k = select_k_elbow(&x, &[1, 2, 3, 4, 5, 6], 0);
        assert!(
            (2..=4).contains(&k),
            "elbow should land near the true k=3, got {k}"
        );
    }

    #[test]
    fn elbow_index_edge_cases() {
        assert_eq!(elbow_index(&[1, 2], &[5.0, 1.0]), None);
        assert_eq!(elbow_index(&[1, 2, 3], &[5.0, 1.0]), None); // length mismatch
                                                                // A sharp elbow at the middle point.
        assert_eq!(elbow_index(&[1, 2, 3], &[10.0, 1.0, 0.9]), Some(1));
    }

    #[test]
    fn flat_curve_picks_first() {
        let idx = elbow_index(&[1, 2, 3], &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(idx, 0);
    }
}
