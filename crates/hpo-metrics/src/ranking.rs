//! Ranking metrics: nDCG, Spearman and Kendall correlations.
//!
//! The paper (§IV-C) judges a cross-validation scheme not only by the single
//! configuration it recommends but by how well its scores *rank* all
//! candidate configurations against their true test performance; nDCG is its
//! headline ranking metric.

/// Normalized discounted cumulative gain of ranking items by
/// `predicted` when the true relevance is `actual`.
///
/// Items are sorted by predicted score (descending) and the DCG of their
/// actual relevances is divided by the ideal DCG (actual sorted descending).
/// Actual relevances are shifted to be non-negative first, so callers can
/// pass raw scores (e.g. R² values that may be negative).
///
/// Returns 1.0 for empty input or when all actual relevances are equal
/// (every ordering is ideal).
pub fn ndcg(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let n = predicted.len();
    if n == 0 {
        return 1.0;
    }
    let min_actual = actual
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min(0.0);
    let rel: Vec<f64> = actual.iter().map(|&a| a - min_actual).collect();

    let order = argsort_desc(predicted);
    let ideal = argsort_desc(&rel);

    let dcg: f64 = order
        .iter()
        .enumerate()
        .map(|(rank, &i)| rel[i] / ((rank + 2) as f64).log2())
        .sum();
    let idcg: f64 = ideal
        .iter()
        .enumerate()
        .map(|(rank, &i)| rel[i] / ((rank + 2) as f64).log2())
        .sum();
    if idcg <= 0.0 {
        1.0
    } else {
        dcg / idcg
    }
}

/// nDCG with **rank-graded** relevance: item relevance is determined by its
/// position in the true ranking (best item gets relevance `n`, next `n−1`,
/// ..., worst gets 1), not by the raw score values.
///
/// This is the discriminative variant used for the paper's configuration-
/// ranking experiments: with raw-score relevance, configurations whose true
/// scores cluster tightly make every ordering look near-perfect, while
/// rank-graded relevance penalizes any inversion of the true order. Tied
/// true scores share their average rank-relevance, so permutations within a
/// tie class don't change the value.
pub fn ndcg_rank_graded(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let n = predicted.len();
    if n == 0 {
        return 1.0;
    }
    // relevance = average rank position from the true scores (descending).
    let rel = rank_relevance(actual);
    let order = argsort_desc(predicted);
    let ideal = argsort_desc(&rel);
    let dcg: f64 = order
        .iter()
        .enumerate()
        .map(|(rank, &i)| rel[i] / ((rank + 2) as f64).log2())
        .sum();
    let idcg: f64 = ideal
        .iter()
        .enumerate()
        .map(|(rank, &i)| rel[i] / ((rank + 2) as f64).log2())
        .sum();
    if idcg <= 0.0 {
        1.0
    } else {
        dcg / idcg
    }
}

/// Rank-based relevance: the best item gets `n`, the worst 1 (ties
/// averaged). `average_ranks` already assigns rank 1 to the smallest value
/// and `n` to the largest, which is exactly the relevance we want.
fn rank_relevance(actual: &[f64]) -> Vec<f64> {
    average_ranks(actual)
}

/// nDCG@k: only the top `k` predicted items contribute gain.
pub fn ndcg_at_k(predicted: &[f64], actual: &[f64], k: usize) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let n = predicted.len();
    if n == 0 || k == 0 {
        return 1.0;
    }
    let k = k.min(n);
    let min_actual = actual
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min(0.0);
    let rel: Vec<f64> = actual.iter().map(|&a| a - min_actual).collect();
    let order = argsort_desc(predicted);
    let ideal = argsort_desc(&rel);
    let dcg: f64 = order
        .iter()
        .take(k)
        .enumerate()
        .map(|(rank, &i)| rel[i] / ((rank + 2) as f64).log2())
        .sum();
    let idcg: f64 = ideal
        .iter()
        .take(k)
        .enumerate()
        .map(|(rank, &i)| rel[i] / ((rank + 2) as f64).log2())
        .sum();
    if idcg <= 0.0 {
        1.0
    } else {
        dcg / idcg
    }
}

/// Spearman rank correlation between two score vectors.
///
/// Ties get average ranks. Returns 0 for inputs shorter than 2 or with zero
/// rank variance.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    pearson(&ra, &rb)
}

/// Kendall tau-b rank correlation (handles ties).
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut ties_a, mut ties_b) = (0i64, 0i64);
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 && db == 0.0 {
                continue;
            } else if da == 0.0 {
                ties_a += 1;
            } else if db == 0.0 {
                ties_b += 1;
            } else if da * db > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = concordant + discordant;
    let denom = (((n0 + ties_a) as f64) * ((n0 + ties_b) as f64)).sqrt();
    if denom <= 0.0 {
        0.0
    } else {
        (concordant - discordant) as f64 / denom
    }
}

fn argsort_desc(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&x, &y| {
        values[y]
            .partial_cmp(&values[x])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

/// Average ranks (1-based); tied values share the mean of their positions.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&x, &y| {
        values[x]
            .partial_cmp(&values[y])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    let denom = (va * vb).sqrt();
    if denom <= 0.0 {
        0.0
    } else {
        cov / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let actual = [0.9, 0.5, 0.1];
        assert!((ndcg(&actual, &actual) - 1.0).abs() < 1e-12);
        assert!((spearman(&actual, &actual) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&actual, &actual) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_ranking_scores_below_one() {
        let actual = [0.9, 0.5, 0.1];
        let pred = [0.1, 0.5, 0.9];
        assert!(ndcg(&pred, &actual) < 1.0);
        assert!((spearman(&pred, &actual) + 1.0).abs() < 1e-12);
        assert!((kendall_tau(&pred, &actual) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_is_in_unit_interval() {
        let pred = [0.3, 0.8, 0.1, 0.5];
        let actual = [0.2, 0.1, 0.9, 0.4];
        let s = ndcg(&pred, &actual);
        assert!((0.0..=1.0).contains(&s), "ndcg {s}");
    }

    #[test]
    fn ndcg_handles_negative_relevance() {
        // R² values can be negative; nDCG must still be valid.
        let pred = [0.5, 0.1];
        let actual = [-2.0, -0.5];
        let s = ndcg(&pred, &actual);
        assert!((0.0..=1.0).contains(&s));
        // the prediction ranks the worse item first → below 1
        assert!(s < 1.0);
    }

    #[test]
    fn ndcg_all_equal_relevance_is_one() {
        assert_eq!(ndcg(&[0.1, 0.9], &[0.5, 0.5]), 1.0);
        assert_eq!(ndcg(&[], &[]), 1.0);
    }

    #[test]
    fn ndcg_hand_computed() {
        // pred order: item1, item0 ; rel = [3, 1] (already non-negative)
        // DCG  = 1/log2(2) + 3/log2(3) = 1 + 3/1.58496
        // IDCG = 3/log2(2) + 1/log2(3) = 3 + 1/1.58496
        let pred = [0.2, 0.8];
        let actual = [3.0, 1.0];
        let dcg = 1.0 / 1.0 + 3.0 / 3.0f64.log2();
        let idcg = 3.0 / 1.0 + 1.0 / 3.0f64.log2();
        assert!((ndcg(&pred, &actual) - dcg / idcg).abs() < 1e-12);
    }

    #[test]
    fn rank_graded_discriminates_where_raw_saturates() {
        // True scores cluster tightly: raw-relevance nDCG barely moves for a
        // bad ordering; rank-graded nDCG must drop noticeably more.
        let actual = [0.900, 0.899, 0.898, 0.897, 0.896, 0.895];
        let reversed: Vec<f64> = actual.iter().rev().copied().collect();
        let raw = ndcg(&reversed, &actual);
        let graded = ndcg_rank_graded(&reversed, &actual);
        assert!(raw > 0.99, "raw saturates: {raw}");
        assert!(graded < 0.9, "graded should discriminate: {graded}");
        // perfect ordering is still 1 under both
        assert!((ndcg_rank_graded(&actual, &actual) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_graded_is_tie_invariant() {
        let actual = [0.5, 0.5, 0.9, 0.1];
        // Two predictions that only differ in the order of the tied pair.
        let p1 = [0.8, 0.7, 0.9, 0.1];
        let p2 = [0.7, 0.8, 0.9, 0.1];
        assert!((ndcg_rank_graded(&p1, &actual) - ndcg_rank_graded(&p2, &actual)).abs() < 1e-12);
    }

    #[test]
    fn rank_graded_in_unit_interval() {
        let pred = [0.3, 0.8, 0.1, 0.5];
        let actual = [0.2, 0.1, 0.9, 0.4];
        let g = ndcg_rank_graded(&pred, &actual);
        assert!((0.0..=1.0).contains(&g));
        assert_eq!(ndcg_rank_graded(&[], &[]), 1.0);
    }

    #[test]
    fn ndcg_at_k_focuses_on_top_items() {
        // Top-1 predicted is the true best → ndcg@1 = 1 regardless of tail.
        let pred = [0.9, 0.8, 0.1];
        let actual = [1.0, 0.0, 0.5];
        assert!((ndcg_at_k(&pred, &actual, 1) - 1.0).abs() < 1e-12);
        assert!(ndcg_at_k(&pred, &actual, 3) < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0];
        let b = [1.0, 1.0, 2.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_b_hand_check() {
        // 4 items, one discordant pair out of 6.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 2.0, 4.0, 3.0];
        assert!((kendall_tau(&a, &b) - (5.0 - 1.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn constant_vectors_have_zero_correlation() {
        assert_eq!(spearman(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(kendall_tau(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn average_ranks_tie_handling() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
