//! Regression metrics: MSE, RMSE, MAE, R².

/// Mean squared error.
///
/// # Panics
/// Panics on length mismatch; returns 0 for empty input.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(&t, &p)| (t - p).powi(2))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    mse(y_true, y_pred).sqrt()
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(&t, &p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Coefficient of determination R² (the paper's regression score).
///
/// `1 - SS_res / SS_tot`. When the truth is constant, returns 1 for perfect
/// predictions and 0 otherwise (scikit-learn convention).
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|&t| (t - mean).powi(2)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(&t, &p)| (t - p).powi(2))
        .sum();
    if ss_tot <= 0.0 {
        return if ss_res <= 1e-12 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_rmse_mae_hand_check() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 3.0, 5.0];
        assert!((mse(&t, &p) - 5.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&t, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_is_one() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(r2(&y, &y), 1.0);
    }

    #[test]
    fn r2_mean_predictor_is_zero() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2(&t, &p).abs() < 1e-12);
    }

    #[test]
    fn r2_can_be_negative() {
        let t = [1.0, 2.0, 3.0];
        let p = [3.0, 2.0, 1.0];
        assert!(r2(&t, &p) < 0.0);
    }

    #[test]
    fn r2_constant_truth_convention() {
        assert_eq!(r2(&[2.0, 2.0], &[2.0, 2.0]), 1.0);
        assert_eq!(r2(&[2.0, 2.0], &[1.0, 3.0]), 0.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(r2(&[], &[]), 0.0);
    }
}
