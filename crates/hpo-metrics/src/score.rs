//! The paper's evaluation metric (§III-C).
//!
//! Configurations are scored from their cross-validation fold results. The
//! vanilla metric is the fold mean µ. The paper augments it in two steps:
//!
//! 1. **Variance** — a UCB-style score `µ + α·σ` (Eq. 1) keeps potentially
//!    good but noisily-evaluated configurations alive.
//! 2. **Sampling size** — the variance weight is scaled by β(γ) (Eq. 2),
//!    a tanh/atanh-shaped function of the subset percentage
//!    `γ = |b_t|/|B| × 100`, so variance matters a lot for small subsets and
//!    vanishes for large ones. The combined score is Eq. 3:
//!    `s = µ + α·β(γ)·σ`.

use serde::{Deserialize, Serialize};

/// The sampling-size weight β(γ) of Eq. 2.
///
/// `gamma_pct` is the subset size as a **percentage** of the full budget
/// (`γ = |b_t|/|B| × 100`), `beta_max` the maximum weight (paper recommends
/// `1/α`; experiments use 10).
///
/// The formula is
/// `β(γ) = 2·atanh(1 − 2·clamp(γ, γ_min, γ_max)/100) + β_max/2` with
/// `γ_min = 50(1 − tanh(β_max/4))` and `γ_max = 50(1 − tanh(−β_max/4))`,
/// which yields a curve that equals `β_max` below `γ_min`, decays through
/// `β_max/2` at γ = 50%, and reaches 0 above `γ_max` (paper Fig. 3). The
/// symmetric tail above 50% exists so the same metric applies to plain
/// cross-validation, where subsets can exceed half the data.
pub fn beta_weight(gamma_pct: f64, beta_max: f64) -> f64 {
    assert!(beta_max > 0.0, "beta_max must be positive");
    let gamma_min = 50.0 * (1.0 - (beta_max / 4.0).tanh());
    let gamma_max = 50.0 * (1.0 - (-(beta_max / 4.0)).tanh());
    let g = gamma_pct.clamp(gamma_min, gamma_max) / 100.0;
    // The endpoints evaluate to exactly 0 and β_max analytically; clamp away
    // the ±1e-16 floating-point residue.
    (2.0 * (1.0 - 2.0 * g).atanh() + beta_max / 2.0).clamp(0.0, beta_max)
}

/// How fold results are reduced to one evaluation score.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum EvalMetric {
    /// Vanilla: the fold mean µ.
    MeanOnly,
    /// Eq. 1: `µ + α·σ` with a fixed variance weight.
    Ucb {
        /// Variance weight α.
        alpha: f64,
    },
    /// Eq. 3: `µ + α·β(γ)·σ` — the paper's full metric with the
    /// sampling-size-dependent weight.
    VarianceSize {
        /// Variance weight α (paper: 0.1).
        alpha: f64,
        /// Maximum sampling weight β_max (paper: 10, recommended `1/α`).
        beta_max: f64,
    },
}

impl EvalMetric {
    /// The paper's configuration: α = 0.1, β_max = 10.
    pub fn paper_default() -> Self {
        EvalMetric::VarianceSize {
            alpha: 0.1,
            beta_max: 10.0,
        }
    }

    /// Scores a configuration from its fold statistics.
    ///
    /// `gamma_pct` is the subset percentage γ; it is ignored by the metrics
    /// that don't use it.
    pub fn score(&self, mean: f64, std_dev: f64, gamma_pct: f64) -> f64 {
        match *self {
            EvalMetric::MeanOnly => mean,
            EvalMetric::Ucb { alpha } => mean + alpha * std_dev,
            EvalMetric::VarianceSize { alpha, beta_max } => {
                mean + alpha * beta_weight(gamma_pct, beta_max) * std_dev
            }
        }
    }
}

/// Per-fold results of evaluating one configuration, plus the subset
/// percentage the evaluation ran on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FoldScores {
    /// Validation score per fold (accuracy / F1 / R², higher is better).
    pub folds: Vec<f64>,
    /// Subset size as a percentage of the full budget, `γ ∈ (0, 100]`.
    pub gamma_pct: f64,
}

impl FoldScores {
    /// Creates fold scores; `gamma_pct` is clamped into `(0, 100]`.
    pub fn new(folds: Vec<f64>, gamma_pct: f64) -> Self {
        FoldScores {
            folds,
            gamma_pct: gamma_pct.clamp(f64::MIN_POSITIVE, 100.0),
        }
    }

    /// Fold mean µ; 0 when no folds were evaluated.
    pub fn mean(&self) -> f64 {
        if self.folds.is_empty() {
            return 0.0;
        }
        self.folds.iter().sum::<f64>() / self.folds.len() as f64
    }

    /// Population standard deviation σ across folds.
    pub fn std_dev(&self) -> f64 {
        if self.folds.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.folds.iter().map(|v| (v - m).powi(2)).sum::<f64>() / self.folds.len() as f64).sqrt()
    }

    /// Applies an [`EvalMetric`] to these fold results.
    ///
    /// The variance-bonus metrics are capped at the best observed fold
    /// score: the UCB bonus is an optimism-under-uncertainty device, and no
    /// optimism should credit a configuration with more than it ever
    /// achieved on any fold. Without the cap, a configuration oscillating
    /// between great and terrible folds (large σ) could outscore a uniformly
    /// good one — most acute for regression, where R² is unbounded below.
    pub fn score(&self, metric: &EvalMetric) -> f64 {
        let raw = metric.score(self.mean(), self.std_dev(), self.gamma_pct);
        match metric {
            EvalMetric::MeanOnly => raw,
            EvalMetric::Ucb { .. } | EvalMetric::VarianceSize { .. } => {
                let best_fold = self.folds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if best_fold.is_finite() {
                    raw.min(best_fold.max(self.mean()))
                } else {
                    raw
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BMAX: f64 = 10.0;

    #[test]
    fn beta_is_beta_max_for_tiny_subsets() {
        // γ below γ_min ≈ 0.67% saturates at β_max.
        assert!((beta_weight(0.0, BMAX) - BMAX).abs() < 1e-9);
        assert!((beta_weight(0.1, BMAX) - BMAX).abs() < 1e-9);
    }

    #[test]
    fn beta_is_zero_for_near_full_subsets() {
        assert!(beta_weight(100.0, BMAX).abs() < 1e-9);
        assert!(beta_weight(99.9, BMAX).abs() < 1e-9);
    }

    #[test]
    fn beta_is_half_max_at_fifty_percent() {
        assert!((beta_weight(50.0, BMAX) - BMAX / 2.0).abs() < 1e-12);
    }

    #[test]
    fn beta_is_monotone_non_increasing() {
        let mut prev = f64::INFINITY;
        for i in 0..=1000 {
            let g = i as f64 / 10.0;
            let b = beta_weight(g, BMAX);
            assert!(b <= prev + 1e-12, "β not monotone at γ={g}");
            assert!((0.0..=BMAX + 1e-9).contains(&b));
            prev = b;
        }
    }

    #[test]
    fn beta_is_symmetric_about_fifty() {
        // Paper: "a symmetric design for sizes larger than 50%".
        for d in [5.0, 10.0, 20.0, 30.0, 40.0] {
            let lo = beta_weight(50.0 - d, BMAX);
            let hi = beta_weight(50.0 + d, BMAX);
            assert!(
                (lo + hi - BMAX).abs() < 1e-9,
                "β({}) + β({}) = {} ≠ β_max",
                50.0 - d,
                50.0 + d,
                lo + hi
            );
        }
    }

    #[test]
    fn beta_changes_faster_at_small_sizes() {
        // Paper assumption (ii): weight change is non-uniform — steeper at
        // the small end than in the middle.
        let d_small = beta_weight(2.0, BMAX) - beta_weight(7.0, BMAX);
        let d_mid = beta_weight(45.0, BMAX) - beta_weight(50.0, BMAX);
        assert!(
            d_small > d_mid,
            "expected steeper change at small γ ({d_small} vs {d_mid})"
        );
    }

    #[test]
    fn metric_mean_only_ignores_variance() {
        let m = EvalMetric::MeanOnly;
        assert_eq!(m.score(0.8, 0.5, 10.0), 0.8);
    }

    #[test]
    fn ucb_adds_weighted_std() {
        let m = EvalMetric::Ucb { alpha: 0.1 };
        assert!((m.score(0.8, 0.5, 10.0) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn variance_size_reduces_to_mean_on_full_data() {
        let m = EvalMetric::paper_default();
        assert!((m.score(0.8, 0.5, 100.0) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn variance_size_rewards_variance_on_small_subsets() {
        let m = EvalMetric::paper_default();
        let small = m.score(0.8, 0.1, 1.0);
        let large = m.score(0.8, 0.1, 90.0);
        assert!(small > large, "small-subset score should weigh σ more");
        // At γ≈γ_min the weight is α·β_max = 1 → score ≈ 0.9.
        assert!((small - 0.9).abs() < 0.02, "got {small}");
    }

    #[test]
    fn fold_scores_statistics() {
        let fs = FoldScores::new(vec![0.8, 0.9, 1.0], 10.0);
        assert!((fs.mean() - 0.9).abs() < 1e-12);
        let expect_std = (0.02f64 / 3.0).sqrt();
        assert!((fs.std_dev() - expect_std).abs() < 1e-12);
    }

    #[test]
    fn fold_scores_degenerate_cases() {
        let empty = FoldScores::new(vec![], 10.0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std_dev(), 0.0);
        let single = FoldScores::new(vec![0.7], 10.0);
        assert_eq!(single.mean(), 0.7);
        assert_eq!(single.std_dev(), 0.0);
    }

    #[test]
    fn gamma_is_clamped_into_valid_range() {
        let fs = FoldScores::new(vec![0.5], -5.0);
        assert!(fs.gamma_pct > 0.0);
        let fs = FoldScores::new(vec![0.5], 500.0);
        assert_eq!(fs.gamma_pct, 100.0);
    }

    #[test]
    fn variance_bonus_is_capped_at_the_best_fold() {
        let metric = EvalMetric::paper_default();
        // Oscillating config: folds swing between terrible and good. Its
        // optimistic score must not exceed its best fold...
        let oscillating = FoldScores::new(vec![-1.0, 0.9, -1.0, 0.9, -1.0], 5.0);
        assert!(oscillating.score(&metric) <= 0.9 + 1e-12);
        // ...so a uniformly good config still wins.
        let stable = FoldScores::new(vec![0.95, 0.96, 0.97, 0.96, 0.95], 5.0);
        assert!(stable.score(&metric) > oscillating.score(&metric));
        // MeanOnly is not capped (nothing to cap: no bonus).
        assert_eq!(oscillating.score(&EvalMetric::MeanOnly), oscillating.mean());
    }

    #[test]
    fn higher_variance_wins_ties_on_small_subsets() {
        // Two configs with equal mean; the noisier one must score higher
        // under the paper metric on a small subset (exploration).
        let metric = EvalMetric::paper_default();
        let stable = FoldScores::new(vec![0.80, 0.80, 0.80], 5.0);
        let noisy = FoldScores::new(vec![0.70, 0.80, 0.90], 5.0);
        assert!(noisy.score(&metric) > stable.score(&metric));
    }
}
