//! Evaluation metrics for the bandit-based HPO reproduction.
//!
//! * [`classification`] — accuracy, confusion matrix, precision/recall/F1.
//! * [`regression`] — MSE/RMSE/MAE and the R² score.
//! * [`ranking`] — nDCG, Spearman and Kendall correlations, used to measure
//!   how well a cross-validation scheme ranks configurations (paper §IV-C).
//! * [`score`] — the paper's evaluation metric: the UCB form (Eq. 1), the
//!   sampling-size weight β(γ) (Eq. 2) and the combined score (Eq. 3).

#![warn(missing_docs)]

pub mod classification;
pub mod ranking;
pub mod regression;
pub mod score;

pub use score::{beta_weight, EvalMetric, FoldScores};
