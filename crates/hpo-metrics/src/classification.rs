//! Classification metrics: accuracy, confusion matrix, precision/recall/F1.

/// Fraction of predictions equal to the truth.
///
/// # Panics
/// Panics when the slices have different lengths; returns 0 for empty input.
pub fn accuracy(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let correct = y_true.iter().zip(y_pred).filter(|(&t, &p)| t == p).count();
    correct as f64 / y_true.len() as f64
}

/// A `k x k` confusion matrix; `counts[t][p]` counts instances of true class
/// `t` predicted as class `p`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix for `n_classes` classes.
    ///
    /// Labels outside `0..n_classes` are ignored (defensive; the dataset
    /// layer validates class indices).
    pub fn from_predictions(y_true: &[f64], y_pred: &[f64], n_classes: usize) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&t, &p) in y_true.iter().zip(y_pred) {
            let (t, p) = (t as usize, p as usize);
            if t < n_classes && p < n_classes {
                counts[t][p] += 1;
            }
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Raw count of true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Precision of class `c` (0 when the class is never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        let predicted: usize = (0..self.n_classes()).map(|t| self.counts[t][c]).sum();
        if predicted == 0 {
            return 0.0;
        }
        self.counts[c][c] as f64 / predicted as f64
    }

    /// Recall of class `c` (0 when the class never occurs).
    pub fn recall(&self, c: usize) -> f64 {
        let actual: usize = self.counts[c].iter().sum();
        if actual == 0 {
            return 0.0;
        }
        self.counts[c][c] as f64 / actual as f64
    }

    /// F1 of class `c`.
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over classes that occur in the truth.
    pub fn macro_f1(&self) -> f64 {
        let present: Vec<usize> = (0..self.n_classes())
            .filter(|&c| self.counts[c].iter().sum::<usize>() > 0)
            .collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().map(|&c| self.f1(c)).sum::<f64>() / present.len() as f64
    }

    /// Weighted F1: per-class F1 weighted by class frequency in the truth.
    ///
    /// This is the `f1` the paper reports on the imbalanced binary datasets
    /// (scikit-learn's `f1_score(average='weighted')` convention).
    pub fn weighted_f1(&self) -> f64 {
        let total: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if total == 0 {
            return 0.0;
        }
        (0..self.n_classes())
            .map(|c| {
                let support: usize = self.counts[c].iter().sum();
                self.f1(c) * support as f64 / total as f64
            })
            .sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.n_classes()).map(|c| self.counts[c][c]).sum();
        correct as f64 / total as f64
    }
}

/// Binary F1 of the positive class (class `1`).
pub fn binary_f1(y_true: &[f64], y_pred: &[f64]) -> f64 {
    ConfusionMatrix::from_predictions(y_true, y_pred, 2).f1(1)
}

/// Area under the ROC curve for binary labels and real-valued scores.
///
/// Computed as the normalized Mann–Whitney U statistic (ties count half),
/// which equals the trapezoidal ROC area. Returns 0.5 when either class is
/// absent (no ranking information).
pub fn roc_auc(y_true: &[f64], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len(), "length mismatch");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Average ranks with tie handling.
    let n = scores.len();
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    let n_pos = y_true.iter().filter(|&&t| t == 1.0).count();
    let n_neg = n - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let rank_sum: f64 = y_true
        .iter()
        .zip(&ranks)
        .filter(|(&t, _)| t == 1.0)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Weighted F1 over all classes (the paper's `F1` column).
pub fn weighted_f1(y_true: &[f64], y_pred: &[f64], n_classes: usize) -> f64 {
    ConfusionMatrix::from_predictions(y_true, y_pred, n_classes).weighted_f1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0.0, 1.0, 1.0, 0.0], &[0.0, 1.0, 0.0, 0.0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let cm = ConfusionMatrix::from_predictions(
            &[0.0, 0.0, 1.0, 1.0, 1.0],
            &[0.0, 1.0, 1.0, 1.0, 0.0],
            2,
        );
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.accuracy(), 0.6);
    }

    #[test]
    fn precision_recall_f1_hand_check() {
        // TP=2, FP=1, FN=1 for class 1.
        let cm = ConfusionMatrix::from_predictions(
            &[0.0, 0.0, 1.0, 1.0, 1.0],
            &[0.0, 1.0, 1.0, 1.0, 0.0],
            2,
        );
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.f1(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions_score_one() {
        let y = [0.0, 1.0, 2.0, 1.0];
        let cm = ConfusionMatrix::from_predictions(&y, &y, 3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.weighted_f1(), 1.0);
    }

    #[test]
    fn absent_class_excluded_from_macro_f1() {
        // class 2 never occurs in the truth.
        let cm = ConfusionMatrix::from_predictions(&[0.0, 1.0], &[0.0, 1.0], 3);
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn degenerate_all_one_class() {
        let cm = ConfusionMatrix::from_predictions(&[1.0, 1.0], &[1.0, 1.0], 2);
        assert_eq!(cm.precision(0), 0.0);
        assert_eq!(cm.recall(0), 0.0);
        assert_eq!(cm.f1(0), 0.0);
        assert_eq!(cm.f1(1), 1.0);
        assert_eq!(cm.weighted_f1(), 1.0);
    }

    #[test]
    fn weighted_f1_weights_by_support() {
        // 3 of class 0 (all right), 1 of class 1 (wrong).
        let cm = ConfusionMatrix::from_predictions(&[0.0, 0.0, 0.0, 1.0], &[0.0, 0.0, 0.0, 0.0], 2);
        // f1(0): p=3/4, r=1 -> 6/7 ; f1(1)=0. weighted = (3/4)(6/7) + (1/4)(0)
        let expect = 0.75 * (6.0 / 7.0);
        assert!((cm.weighted_f1() - expect).abs() < 1e-12);
    }

    #[test]
    fn roc_auc_perfect_separation_is_one() {
        let t = [0.0, 0.0, 1.0, 1.0];
        let s = [0.1, 0.2, 0.8, 0.9];
        assert!((roc_auc(&t, &s) - 1.0).abs() < 1e-12);
        let rev = [0.9, 0.8, 0.2, 0.1];
        assert!(roc_auc(&t, &rev).abs() < 1e-12);
    }

    #[test]
    fn roc_auc_random_scores_near_half() {
        // Scores identical => no information => 0.5 via tie handling.
        let t = [0.0, 1.0, 0.0, 1.0];
        let s = [0.5, 0.5, 0.5, 0.5];
        assert!((roc_auc(&t, &s) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roc_auc_hand_computed() {
        // pos scores {0.8, 0.4}, neg scores {0.6, 0.2}:
        // pairs won: (0.8>0.6),(0.8>0.2),(0.4>0.2) = 3 of 4 -> 0.75.
        let t = [1.0, 0.0, 1.0, 0.0];
        let s = [0.8, 0.6, 0.4, 0.2];
        assert!((roc_auc(&t, &s) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn roc_auc_degenerate_single_class() {
        assert_eq!(roc_auc(&[1.0, 1.0], &[0.3, 0.7]), 0.5);
        assert_eq!(roc_auc(&[0.0, 0.0], &[0.3, 0.7]), 0.5);
    }

    #[test]
    fn binary_f1_helper_matches_matrix() {
        let t = [0.0, 1.0, 1.0, 0.0];
        let p = [1.0, 1.0, 0.0, 0.0];
        let cm = ConfusionMatrix::from_predictions(&t, &p, 2);
        assert_eq!(binary_f1(&t, &p), cm.f1(1));
    }
}
