//! Property tests for metric invariants.

use hpo_metrics::classification::{accuracy, roc_auc, ConfusionMatrix};
use hpo_metrics::ranking::{ndcg, ndcg_rank_graded, spearman};
use hpo_metrics::regression::{mae, mse, r2, rmse};
use hpo_metrics::score::beta_weight;
use hpo_metrics::{EvalMetric, FoldScores};
use proptest::prelude::*;

proptest! {
    /// Accuracy equals the confusion-matrix accuracy for any labels.
    #[test]
    fn accuracy_matches_confusion_matrix(
        pairs in proptest::collection::vec((0usize..3, 0usize..3), 1..100)
    ) {
        let t: Vec<f64> = pairs.iter().map(|&(a, _)| a as f64).collect();
        let p: Vec<f64> = pairs.iter().map(|&(_, b)| b as f64).collect();
        let cm = ConfusionMatrix::from_predictions(&t, &p, 3);
        prop_assert!((accuracy(&t, &p) - cm.accuracy()).abs() < 1e-12);
    }

    /// Weighted F1 is bounded by [0, 1] and hits 1 on perfect predictions.
    #[test]
    fn weighted_f1_bounds(labels in proptest::collection::vec(0usize..4, 1..80)) {
        let t: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        let cm = ConfusionMatrix::from_predictions(&t, &t, 4);
        prop_assert!((cm.weighted_f1() - 1.0).abs() < 1e-12);
        // random predictions stay bounded
        let p: Vec<f64> = labels.iter().map(|&l| ((l + 1) % 4) as f64).collect();
        let cm = ConfusionMatrix::from_predictions(&t, &p, 4);
        let f1 = cm.weighted_f1();
        prop_assert!((0.0..=1.0).contains(&f1));
    }

    /// ROC-AUC is flip-symmetric: negating scores mirrors around 0.5.
    #[test]
    fn roc_auc_flip_symmetry(
        pairs in proptest::collection::vec((0usize..2, -5.0f64..5.0), 2..60)
    ) {
        let t: Vec<f64> = pairs.iter().map(|&(a, _)| a as f64).collect();
        let s: Vec<f64> = pairs.iter().map(|&(_, v)| v).collect();
        let neg: Vec<f64> = s.iter().map(|&v| -v).collect();
        let auc = roc_auc(&t, &s);
        let auc_neg = roc_auc(&t, &neg);
        prop_assert!((0.0..=1.0).contains(&auc));
        let n_pos = t.iter().filter(|&&x| x == 1.0).count();
        if n_pos > 0 && n_pos < t.len() {
            prop_assert!((auc + auc_neg - 1.0).abs() < 1e-9, "{} + {} != 1", auc, auc_neg);
        }
    }

    /// Regression metrics: rmse² = mse, mae ≤ rmse, r2(perfect) = 1.
    #[test]
    fn regression_metric_relations(
        pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 2..60)
    ) {
        let t: Vec<f64> = pairs.iter().map(|&(a, _)| a).collect();
        let p: Vec<f64> = pairs.iter().map(|&(_, b)| b).collect();
        prop_assert!((rmse(&t, &p).powi(2) - mse(&t, &p)).abs() < 1e-9);
        prop_assert!(mae(&t, &p) <= rmse(&t, &p) + 1e-12);
        prop_assert!((r2(&t, &t) - 1.0).abs() < 1e-12 || t.iter().all(|&v| v == t[0]));
    }

    /// Both nDCG variants are permutation-consistent: the identity ranking
    /// scores at least as high as any other prediction.
    #[test]
    fn ndcg_identity_is_optimal(
        actual in proptest::collection::vec(0.0f64..1.0, 2..40),
        shuffle_seed in 0u64..100,
    ) {
        use rand::seq::SliceRandom;
        let mut rng = hpo_data_shim::rng(shuffle_seed);
        let mut pred = actual.clone();
        pred.shuffle(&mut rng);
        prop_assert!(ndcg(&actual, &actual) >= ndcg(&pred, &actual) - 1e-9);
        prop_assert!(
            ndcg_rank_graded(&actual, &actual) >= ndcg_rank_graded(&pred, &actual) - 1e-9
        );
    }

    /// Spearman is invariant under monotone transforms of either argument.
    #[test]
    fn spearman_monotone_invariance(
        values in proptest::collection::vec((-3.0f64..3.0, -3.0f64..3.0), 3..40)
    ) {
        let a: Vec<f64> = values.iter().map(|&(x, _)| x).collect();
        let b: Vec<f64> = values.iter().map(|&(_, y)| y).collect();
        let a_t: Vec<f64> = a.iter().map(|&x| x.exp()).collect(); // strictly monotone
        prop_assert!((spearman(&a, &b) - spearman(&a_t, &b)).abs() < 1e-9);
    }

    /// Eq. 3 is monotone in the mean and (for fixed γ < 100) in the std.
    #[test]
    fn eq3_monotonicity(
        mean in 0.0f64..1.0,
        std in 0.0f64..0.3,
        gamma in 1.0f64..99.0,
        bump in 0.001f64..0.2,
    ) {
        let m = EvalMetric::paper_default();
        prop_assert!(m.score(mean + bump, std, gamma) > m.score(mean, std, gamma));
        prop_assert!(m.score(mean, std + bump, gamma) >= m.score(mean, std, gamma));
    }

    /// FoldScores::score equals applying the metric to (mean, std, γ),
    /// capped at the best fold for the variance-bonus metrics (the
    /// no-optimism-beyond-observation rule).
    #[test]
    fn fold_scores_consistency(
        folds in proptest::collection::vec(0.0f64..1.0, 1..8),
        gamma in 0.5f64..100.0,
    ) {
        let fs = FoldScores::new(folds, gamma);
        let best = fs.folds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for metric in [
            EvalMetric::MeanOnly,
            EvalMetric::Ucb { alpha: 0.3 },
            EvalMetric::paper_default(),
        ] {
            let direct = metric.score(fs.mean(), fs.std_dev(), fs.gamma_pct);
            let expect = match metric {
                EvalMetric::MeanOnly => direct,
                _ => direct.min(best.max(fs.mean())),
            };
            prop_assert!((fs.score(&metric) - expect).abs() < 1e-12);
            // the cap never pushes the score below the fold mean
            prop_assert!(fs.score(&metric) >= fs.mean() - 1e-12);
        }
    }

    /// β(γ) respects its analytic endpoints for any β_max.
    #[test]
    fn beta_endpoints(beta_max in 0.5f64..30.0) {
        prop_assert!((beta_weight(0.0, beta_max) - beta_max).abs() < 1e-9);
        prop_assert!(beta_weight(100.0, beta_max).abs() < 1e-9);
        prop_assert!((beta_weight(50.0, beta_max) - beta_max / 2.0).abs() < 1e-9);
    }
}

/// Tiny local RNG shim so this test crate doesn't depend on hpo-data.
mod hpo_data_shim {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    pub fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }
}
