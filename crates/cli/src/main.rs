//! `bhpo` — hyperparameter optimization from the command line.
//!
//! ```text
//! bhpo optimize --data train.libsvm [--test test.libsvm] [--method sha]
//!               [--pipeline enhanced] [--hps 4] [--seed 42] [--json out.json]
//!               [--events-out run.jsonl] [--metrics-out metrics.json]
//!               [--log-level info] [--progress]
//! bhpo cv       --data train.libsvm [--ratio 0.2] [--pipeline enhanced]
//! bhpo groups   --data train.libsvm [--v 2]
//! bhpo datasets
//! ```
//!
//! `--data` accepts `.libsvm`/`.svm` or `.csv` (label in the last column),
//! or `synth:<name>` to use a catalog stand-in (see `bhpo datasets`).

use std::process::ExitCode;

mod cli;
mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            hpo_core::obs_error!("bhpo: {e}");
            ExitCode::FAILURE
        }
    }
}
