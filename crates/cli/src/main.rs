//! `bhpo` — hyperparameter optimization from the command line.
//!
//! ```text
//! bhpo optimize --data train.libsvm [--test test.libsvm] [--method sha]
//!               [--pipeline enhanced] [--hps 4] [--seed 42] [--json out.json]
//!               [--events-out run.jsonl] [--metrics-out metrics.json]
//!               [--log-level info] [--progress]
//! bhpo cv       --data train.libsvm [--ratio 0.2] [--pipeline enhanced]
//! bhpo groups   --data train.libsvm [--v 2]
//! bhpo datasets
//! bhpo serve    --data-dir runs/ [--addr 127.0.0.1:7878] [--slots 2]
//! bhpo submit   --data synth:australian [--method sha] [--seed 42]
//! bhpo watch    --id run-000000
//! ```
//!
//! `--data` accepts `.libsvm`/`.svm` or `.csv` (label in the last column),
//! or `synth:<name>` to use a catalog stand-in (see `bhpo datasets`).
//! The service verbs (`serve`, `submit`, `runs`, `status`, `watch`,
//! `cancel`, `resume`, `result`) run HPO as a job-queue server; see the
//! `hpo-server` crate and README's "Running as a service".

use std::process::ExitCode;

mod cli;
mod commands;
mod service;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            hpo_core::obs_error!("bhpo: {e}");
            ExitCode::FAILURE
        }
    }
}
