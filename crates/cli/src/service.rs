//! The service-facing `bhpo` subcommands: `serve` plus the API client
//! verbs (`submit`, `runs`, `status`, `watch`, `top`, `cancel`, `resume`,
//! `result`). Client verbs talk to `--server` (default `127.0.0.1:7878`)
//! over the dependency-free [`hpo_server::Client`].

use crate::cli::{CliError, Flags};
use hpo_server::client::{FollowOutcome, StatusView};
use hpo_server::{
    ChaosPlan, Client, ClientError, FleetConfig, RunSpec, RunStatus, RunnerConfig, ServerConfig,
};
use std::time::Duration;

/// Default server address for every client verb.
const DEFAULT_SERVER: &str = "127.0.0.1:7878";

fn client(flags: &Flags) -> Client {
    Client::new(flags.get("server").unwrap_or(DEFAULT_SERVER))
}

fn api_err(e: hpo_server::client::ClientError) -> CliError {
    CliError(e.to_string())
}

/// `bhpo serve`: run the HPO service in the foreground until killed.
///
/// There is deliberately no graceful-exit command: killing the process
/// leaves in-flight runs `Running` on disk, and the next `bhpo serve` on
/// the same `--data-dir` requeues and resumes them from their checkpoints.
pub fn serve(flags: &Flags) -> Result<(), CliError> {
    let slots: usize = flags.get_or("slots", 2usize)?;
    if slots == 0 {
        return Err(CliError(
            "--slots must be at least 1 (0 would never execute a run)".into(),
        ));
    }
    let defaults = FleetConfig::default();
    let fleet = FleetConfig {
        enabled: flags.get("fleet").is_some(),
        lease_ttl: Duration::from_millis(
            flags.get_or("lease-ttl-ms", defaults.lease_ttl.as_millis() as u64)?,
        ),
        heartbeat_ttl: Duration::from_millis(flags.get_or(
            "heartbeat-ttl-ms",
            defaults.heartbeat_ttl.as_millis() as u64,
        )?),
        chunk: flags.get_or("lease-chunk", defaults.chunk)?,
        local_grace: Duration::from_millis(
            flags.get_or("local-grace-ms", defaults.local_grace.as_millis() as u64)?,
        ),
    };
    let config = ServerConfig {
        addr: flags.get("addr").unwrap_or(DEFAULT_SERVER).to_string(),
        data_dir: flags.require("data-dir")?.into(),
        slots,
        checkpoint_every: flags.get_or("checkpoint-every", 1usize)?,
        fleet,
        trace_dir: flags.get("trace-dir").map(Into::into),
        progress: flags.get("progress").is_some(),
    };
    let fleet_on = config.fleet.enabled;
    let handle =
        hpo_server::serve(config).map_err(|e| CliError(format!("starting server: {e}")))?;
    println!(
        "serving on http://{}{}",
        handle.addr(),
        if fleet_on { " (fleet enabled)" } else { "" }
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// `bhpo runner`: join a `--fleet` coordinator and evaluate leased trial
/// batches until killed. The `--chaos-*` flags arm seeded fault injection
/// (die mid-batch, go silent, drop/duplicate deliveries, straggle) and
/// exist for the fleet's integration tests and CI chaos job.
pub fn runner(flags: &Flags) -> Result<(), CliError> {
    let defaults = RunnerConfig::default();
    let chaos = ChaosPlan {
        seed: flags.get_or("chaos-seed", 0u64)?,
        kill_after_trials: match flags.get("chaos-kill-after-trials") {
            None => None,
            Some(v) => Some(v.parse().map_err(|_| {
                CliError(format!("invalid value `{v}` for --chaos-kill-after-trials"))
            })?),
        },
        silence_heartbeats: flags.get("chaos-silence-heartbeats").is_some(),
        drop_result_prob: flags.get_or("chaos-drop-prob", 0.0f64)?,
        dup_result_prob: flags.get_or("chaos-dup-prob", 0.0f64)?,
        straggle_ms: flags.get_or("chaos-straggle-ms", 0u64)?,
    };
    let config = RunnerConfig {
        server: flags.get("server").unwrap_or(DEFAULT_SERVER).to_string(),
        name: flags.get("name").map(str::to_string),
        poll: Duration::from_millis(flags.get_or("poll-ms", defaults.poll.as_millis() as u64)?),
        heartbeat_every: Duration::from_millis(
            flags.get_or("heartbeat-ms", defaults.heartbeat_every.as_millis() as u64)?,
        ),
        chaos,
    };
    if config.chaos.is_armed() {
        eprintln!("runner: chaos plan armed: {:?}", config.chaos);
    }
    let stop = hpo_core::CancelToken::new();
    let report = hpo_server::run_runner(&config, &stop).map_err(api_err)?;
    println!(
        "runner {} exited ({:?}): {} trials over {} leases",
        report.runner, report.exit, report.trials, report.leases
    );
    Ok(())
}

/// Builds a [`RunSpec`] from submit flags (same names as `bhpo optimize`
/// where they overlap). `--space-file` is read here and inlined into the
/// spec, so the server (and any runner it leases trials to) never needs
/// the file: archived runs stay self-contained.
fn spec_from_flags(flags: &Flags) -> Result<RunSpec, CliError> {
    let plugin = flags.get("space-file").is_some() || flags.get("evaluator-cmd").is_some();
    let mut spec = RunSpec::default();
    match flags.get("data") {
        Some(d) => spec.dataset = d.to_string(),
        // Plugin runs evaluate an external program; no dataset involved.
        None if plugin => {}
        None => return Err(CliError("missing required flag --data".into())),
    }
    match (flags.get("space-file"), flags.get("evaluator-cmd")) {
        (None, None) => {}
        (Some(_), None) => {
            return Err(CliError(
                "--space-file requires --evaluator-cmd (the program evaluating each config)"
                    .into(),
            ))
        }
        (None, Some(_)) => {
            return Err(CliError(
                "--evaluator-cmd requires --space-file (the search space it is tuned over)"
                    .into(),
            ))
        }
        (Some(path), Some(cmd)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("reading --space-file {path}: {e}")))?;
            spec.space_spec = Some(text);
            spec.evaluator_cmd = Some(cmd.split_whitespace().map(str::to_string).collect());
            spec.plugin_budget = flags.get_or("plugin-budget", spec.plugin_budget)?;
            spec.plugin_folds = flags.get_or("plugin-folds", spec.plugin_folds)?;
        }
    }
    if let Some(v) = flags.get("method") {
        spec.method = v.to_string();
    }
    if let Some(v) = flags.get("pipeline") {
        spec.pipeline = v.to_string();
    }
    if let Some(v) = flags.get("space") {
        spec.space = v.to_string();
    }
    spec.seed = flags.get_or("seed", spec.seed)?;
    spec.scale = flags.get_or("scale", spec.scale)?;
    spec.max_iter = flags.get_or("max-iter", spec.max_iter)?;
    spec.workers = flags.get_or("workers", spec.workers)?;
    spec.fold_workers = flags.get_or("fold-workers", spec.fold_workers)?;
    spec.warm_start = match flags.get("warm-start").unwrap_or("on") {
        "on" | "true" => true,
        "off" | "false" => false,
        other => {
            return Err(CliError(format!(
                "invalid value `{other}` for --warm-start (expected on|off)"
            )))
        }
    };
    spec.validate().map_err(|e| CliError(e.to_string()))?;
    Ok(spec)
}

/// `bhpo submit`: submit a run; prints the bare run id on stdout so shells
/// can capture it (`id=$(bhpo submit ...)`).
pub fn submit(flags: &Flags) -> Result<(), CliError> {
    let spec = spec_from_flags(flags)?;
    let state = client(flags).submit(&spec).map_err(api_err)?;
    println!("{}", state.id);
    Ok(())
}

/// `bhpo runs`: list registered runs, optionally `--status` filtered.
pub fn runs(flags: &Flags) -> Result<(), CliError> {
    let runs = client(flags).runs(flags.get("status")).map_err(api_err)?;
    println!("{:<12} {:<10} {:>7}  error", "id", "status", "resumes");
    for r in runs {
        println!(
            "{:<12} {:<10} {:>7}  {}",
            r.id,
            r.status.as_str(),
            r.resumes,
            r.error.as_deref().unwrap_or("-")
        );
    }
    Ok(())
}

fn print_status(view: &StatusView) {
    let s = &view.state;
    println!("id:       {}", s.id);
    println!("status:   {}", s.status.as_str());
    println!("resumes:  {}", s.resumes);
    if let Some(e) = &s.error {
        println!("error:    {e}");
    }
    match &view.best {
        Some(b) => println!(
            "best:     score {:.4} at budget {} ({} trials so far)",
            b.score, b.budget, b.n_trials
        ),
        None => println!("best:     - (no completed trial yet)"),
    }
}

/// `bhpo status`: one run's state and best-trial-so-far.
pub fn status(flags: &Flags) -> Result<(), CliError> {
    let view = client(flags)
        .status(flags.require("id")?)
        .map_err(api_err)?;
    print_status(&view);
    Ok(())
}

/// `bhpo watch`: stream a run's journal until it reaches a terminal state.
///
/// Prefers the server's chunked `follow=1` stream, where lines arrive the
/// moment they commit with no poll sleep; a server that predates streaming
/// (it ignores or rejects the `follow` parameter) drops the command back
/// to the original 500 ms polling loop. The line count accumulated by the
/// streaming callback carries over, so no lines repeat across the
/// fallback.
pub fn watch(flags: &Flags) -> Result<(), CliError> {
    let id = flags.require("id")?;
    let api = client(flags);
    let mut from = 0usize;
    let streamed = api.follow_events(id, from, |line| {
        println!("{line}");
        from += 1;
    });
    match streamed {
        Ok(FollowOutcome::Streamed) => {
            let view = api.status(id).map_err(api_err)?;
            print_status(&view);
            return Ok(());
        }
        // Pre-streaming server, or a stream that broke mid-run: resume
        // from the counted offset by polling.
        Ok(FollowOutcome::NotSupported) | Err(_) => {}
    }
    loop {
        let tail = api.events(id, from).map_err(api_err)?;
        for line in tail.lines() {
            println!("{line}");
            from += 1;
        }
        let view = api.status(id).map_err(api_err)?;
        if view.state.status.is_terminal() {
            print_status(&view);
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(500));
    }
}

/// `bhpo top`: a live dashboard over `/metrics`, the fleet runner list,
/// and per-run status. Redraws in place every `--interval-ms` (default
/// 2000); `--once` prints a single frame and exits, which is what scripts
/// and CI use.
pub fn top(flags: &Flags) -> Result<(), CliError> {
    let api = client(flags);
    let server = flags.get("server").unwrap_or(DEFAULT_SERVER).to_string();
    let once = flags.get("once").is_some();
    let interval = Duration::from_millis(flags.get_or("interval-ms", 2000u64)?);
    loop {
        let frame = top_frame(&api, &server)?;
        if once {
            print!("{frame}");
            return Ok(());
        }
        // Clear + cursor home so the frame repaints in place.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}

/// The value of the first unlabelled Prometheus sample named `name`.
fn prom_value(text: &str, name: &str) -> Option<f64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() == Some(name) {
            return parts.next()?.parse().ok();
        }
    }
    None
}

/// One rendered `bhpo top` frame.
fn top_frame(api: &Client, server: &str) -> Result<String, CliError> {
    use std::fmt::Write as _;
    let metrics = api.metrics().map_err(api_err)?;
    let count =
        |name: &str| prom_value(&metrics, name).map_or_else(|| "-".to_string(), |v| format!("{v}"));
    let mut out = String::new();
    let _ = writeln!(out, "bhpo top — {server}");
    let _ = writeln!(
        out,
        "server   requests={} submitted={} completed={} failed={} cancelled={}",
        count("hpo_server_http_requests_total"),
        count("hpo_server_runs_submitted_total"),
        count("hpo_server_runs_completed_total"),
        count("hpo_server_runs_failed_total"),
        count("hpo_server_runs_cancelled_total"),
    );
    let _ = writeln!(
        out,
        "fleet    runners={} leases_outstanding={} leases_granted={} leases_expired={}",
        count("hpo_fleet_runners"),
        count("hpo_fleet_leases_outstanding"),
        count("hpo_fleet_leases_granted_total"),
        count("hpo_fleet_leases_expired_total"),
    );
    match api.fleet_runners() {
        Ok(runners) => {
            for r in &runners {
                let _ = writeln!(
                    out,
                    "  {:<16} last seen {:>6.1}s ago",
                    r.runner,
                    r.idle_ms as f64 / 1000.0
                );
            }
        }
        Err(ClientError::Api { status: 409, .. }) => {
            let _ = writeln!(out, "  (fleet disabled on this server)");
        }
        Err(e) => return Err(api_err(e)),
    }
    let runs = api.runs(None).map_err(api_err)?;
    let queued = runs
        .iter()
        .filter(|r| r.status == RunStatus::Queued)
        .count();
    let active: Vec<_> = runs
        .iter()
        .filter(|r| r.status == RunStatus::Running)
        .collect();
    let _ = writeln!(
        out,
        "runs     total={} running={} queued={}",
        runs.len(),
        active.len(),
        queued
    );
    for r in active {
        match api.status(&r.id) {
            Ok(view) => match view.best {
                Some(b) => {
                    let _ = writeln!(
                        out,
                        "  {:<12} best {:.4} @ budget {} ({} trials)",
                        r.id, b.score, b.budget, b.n_trials
                    );
                }
                None => {
                    let _ = writeln!(out, "  {:<12} (no completed trial yet)", r.id);
                }
            },
            Err(_) => {
                let _ = writeln!(out, "  {:<12} (status unavailable)", r.id);
            }
        }
    }
    Ok(out)
}

/// `bhpo cancel`: cooperative cancel; the run's checkpoint stays resumable.
pub fn cancel(flags: &Flags) -> Result<(), CliError> {
    let id = flags.require("id")?;
    client(flags).cancel(id).map_err(api_err)?;
    println!("cancel requested for {id}");
    Ok(())
}

/// `bhpo resume`: requeue a cancelled or failed run.
pub fn resume(flags: &Flags) -> Result<(), CliError> {
    let state = client(flags)
        .resume(flags.require("id")?)
        .map_err(api_err)?;
    println!("{} requeued (resumes: {})", state.id, state.resumes);
    Ok(())
}

/// `bhpo result`: fetch a completed run's result; `--json FILE` saves it.
pub fn result(flags: &Flags) -> Result<(), CliError> {
    let row = client(flags)
        .result(flags.require("id")?)
        .map_err(api_err)?;
    println!(
        "method={} pipeline={} {}: train {:.4} test {:.4}",
        row.method, row.pipeline, row.score_kind, row.train_score, row.test_score
    );
    println!("best configuration: {}", row.best_config_desc);
    println!(
        "search: {:.2}s, {} evaluations, {:.2} GMAC",
        row.search_seconds,
        row.n_evaluations,
        row.search_cost_units as f64 / 1e9
    );
    if let Some(path) = flags.get("json") {
        hpo_core::persist::save_run_result_file(&row, path).map_err(|e| CliError(e.to_string()))?;
        println!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(s: &str) -> Flags {
        Flags::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn submit_flags_build_a_valid_spec() {
        let spec = spec_from_flags(&flags(
            "--data synth:australian --method asha --space table3:3 --seed 9 --scale 0.5",
        ))
        .unwrap();
        assert_eq!(spec.method, "asha");
        assert_eq!(spec.space, "table3:3");
        assert_eq!(spec.seed, 9);
        assert!(spec.warm_start);
    }

    #[test]
    fn submit_flags_reject_bad_specs() {
        assert!(spec_from_flags(&flags("--data synth:nope")).is_err());
        assert!(spec_from_flags(&flags("--data synth:australian --workers 0")).is_err());
        assert!(spec_from_flags(&flags("--data synth:australian --warm-start maybe")).is_err());
    }

    #[test]
    fn submit_plugin_flags_inline_the_space_file() {
        let path = std::env::temp_dir().join("bhpo_submit_space.txt");
        std::fs::write(&path, "lr float 0.001..0.1 log\n").unwrap();
        let f = Flags::parse(&[
            "--space-file".to_string(),
            path.display().to_string(),
            "--evaluator-cmd".to_string(),
            "./eval.sh --fast".to_string(),
            "--plugin-budget".to_string(),
            "64".to_string(),
            "--method".to_string(),
            "hb".to_string(),
        ])
        .unwrap();
        let spec = spec_from_flags(&f).unwrap();
        assert_eq!(
            spec.evaluator_cmd,
            Some(vec!["./eval.sh".to_string(), "--fast".to_string()])
        );
        assert!(spec.space_spec.as_deref().unwrap().contains("lr float"));
        assert_eq!(spec.plugin_budget, 64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn submit_plugin_flags_must_travel_together() {
        assert!(spec_from_flags(&flags("--evaluator-cmd ./eval.sh")).is_err());
        assert!(spec_from_flags(&flags("--space-file nope.txt")).is_err());
    }

    #[test]
    fn client_errors_become_cli_errors() {
        // Port 1 on loopback is never listening: every verb must fail with
        // a transport CliError, not panic.
        let f = flags("--server 127.0.0.1:1 --id run-000000");
        assert!(status(&f).is_err());
        assert!(cancel(&f).is_err());
    }
}
