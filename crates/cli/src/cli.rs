//! Argument parsing and command dispatch for `bhpo`.

use crate::{commands, service};
use std::collections::HashMap;
use std::fmt;

/// A CLI-level error with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<hpo_data::DataError> for CliError {
    fn from(e: hpo_data::DataError) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

/// Parsed `--key value` flags after the subcommand.
#[derive(Clone, Debug, Default)]
pub struct Flags {
    raw: HashMap<String, String>,
}

impl Flags {
    /// Parses flag pairs; bare `--flag` becomes `"true"`.
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut raw = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let Some(key) = args[i].strip_prefix("--") else {
                return Err(CliError(format!("unexpected argument `{}`", args[i])));
            };
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                raw.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                raw.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        }
        Ok(Flags { raw })
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.raw
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError(format!("missing required flag --{key}")))
    }

    /// Optional string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.raw.get(key).map(String::as_str)
    }

    /// Optional typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.raw.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("invalid value `{v}` for --{key}"))),
        }
    }
}

const USAGE: &str = "usage:
  bhpo optimize --data <file|synth:name> [--test <file>] [--method random|sha|hb|bohb|asha|pasha|dehb|ucb|thompson|epsgreedy|idhb]
                [--pipeline vanilla|enhanced] [--hps 1..8] [--max-iter N] [--seed N] [--json <out.json>]
                [--trial-timeout SECS] [--max-retries N] [--checkpoint FILE] [--checkpoint-every N] [--resume]
                [--workers N] [--fold-workers N] [--warm-start on|off]
                [--events-out FILE.jsonl] [--metrics-out FILE.json] [--trace-out FILE.jsonl]
                [--log-level error|warn|info|debug] [--progress]
                [--space-file FILE --evaluator-cmd 'PROG ARGS...' [--plugin-budget N] [--plugin-folds N]]
                (with --space-file/--evaluator-cmd the search tunes an external program; --data is unused)
  bhpo cv       --data <file|synth:name> [--ratio 0..1] [--pipeline vanilla|enhanced|random] [--seed N]
  bhpo groups   --data <file|synth:name> [--v N] [--algo kmeans|meanshift|affinity] [--seed N]
  bhpo datasets
  bhpo serve    --data-dir DIR [--addr 127.0.0.1:7878] [--slots N] [--checkpoint-every N]
                [--fleet] [--lease-ttl-ms N] [--heartbeat-ttl-ms N] [--lease-chunk N] [--local-grace-ms N]
                [--trace-dir DIR] [--progress]
  bhpo runner   [--server HOST:PORT] [--name NAME] [--poll-ms N] [--heartbeat-ms N]
                [--chaos-seed N] [--chaos-kill-after-trials N] [--chaos-silence-heartbeats]
                [--chaos-drop-prob 0..1] [--chaos-dup-prob 0..1] [--chaos-straggle-ms N]
  bhpo submit   --data synth:name [--server HOST:PORT] [--method ...] [--pipeline ...] [--space cv18|table3:1..8]
                [--seed N] [--scale 0..1] [--max-iter N] [--workers N] [--fold-workers N] [--warm-start on|off]
                [--space-file FILE --evaluator-cmd 'PROG ARGS...' [--plugin-budget N] [--plugin-folds N]]
  bhpo runs     [--server HOST:PORT] [--status queued|running|completed|cancelled|failed]
  bhpo status   --id run-NNNNNN [--server HOST:PORT]
  bhpo watch    --id run-NNNNNN [--server HOST:PORT]
  bhpo top      [--server HOST:PORT] [--interval-ms N] [--once]
  bhpo cancel   --id run-NNNNNN [--server HOST:PORT]
  bhpo resume   --id run-NNNNNN [--server HOST:PORT]
  bhpo result   --id run-NNNNNN [--server HOST:PORT] [--json out.json]

data formats: .libsvm/.svm, .csv (label last column), synth:<catalog-name>";

/// Entry point: dispatches the subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError(USAGE.to_string()));
    };
    let flags = Flags::parse(&args[1..])?;
    match cmd.as_str() {
        "optimize" => commands::optimize(&flags),
        "cv" => commands::cross_validate(&flags),
        "groups" => commands::groups(&flags),
        "datasets" => commands::datasets(),
        "serve" => service::serve(&flags),
        "runner" => service::runner(&flags),
        "submit" => service::submit(&flags),
        "runs" => service::runs(&flags),
        "status" => service::status(&flags),
        "watch" => service::watch(&flags),
        "top" => service::top(&flags),
        "cancel" => service::cancel(&flags),
        "resume" => service::resume(&flags),
        "result" => service::result(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        "version" | "--version" | "-V" => {
            println!("bhpo {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        other => Err(CliError(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(s: &str) -> Flags {
        Flags::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_key_value_and_bare_flags() {
        let f = flags("--data x.csv --seed 7 --json");
        assert_eq!(f.require("data").unwrap(), "x.csv");
        assert_eq!(f.get_or("seed", 0u64).unwrap(), 7);
        assert_eq!(f.get("json"), Some("true"));
    }

    #[test]
    fn missing_required_flag_errors() {
        let f = flags("--seed 7");
        assert!(f.require("data").is_err());
    }

    #[test]
    fn invalid_typed_value_errors() {
        let f = flags("--seed abc");
        assert!(f.get_or("seed", 0u64).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        let e = run(&["frobnicate".to_string()]).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn positional_arguments_rejected() {
        assert!(Flags::parse(&["x.csv".to_string()]).is_err());
    }
}
