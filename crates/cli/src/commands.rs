//! The `bhpo` subcommands.

use crate::cli::{CliError, Flags};
use hpo_core::asha::AshaConfig;
use hpo_core::bandit::{EpsGreedyConfig, ThompsonConfig, UcbConfig};
use hpo_core::bohb::BohbConfig;
use hpo_core::dehb::DehbConfig;
use hpo_core::evaluator::CvEvaluator;
use hpo_core::exec::{compare_scores, FailurePolicy};
use hpo_core::harness::{run_method_with, run_plugin_with, Method, RunOptions, RunResult};
use hpo_core::plugin::PluginSettings;
use hpo_core::spec::SpaceSpec;
use hpo_core::hyperband::HyperbandConfig;
use hpo_core::idhb::IdhbConfig;
use hpo_core::obs::{self, LogLevel, Recorder};
use hpo_core::obs_info;
use hpo_core::pasha::PashaConfig;
use hpo_core::persist::save_run_result_file;
use hpo_core::pipeline::Pipeline;
use hpo_core::random_search::RandomSearchConfig;
use hpo_core::sha::ShaConfig;
use hpo_core::space::SearchSpace;
use hpo_data::dataset::Dataset;
use hpo_data::io::{read_csv, read_libsvm_file};
use hpo_data::rng::rng_from_seed;
use hpo_data::split::{stratified_train_test_split, train_test_split};
use hpo_data::synth::catalog::PaperDataset;
use hpo_models::mlp::MlpParams;
use hpo_sampling::groups::{build_grouping, ClusterAlgo, GroupingConfig};

/// Loads a dataset from a file path or a `synth:<name>` spec.
fn load_data(spec: &str, seed: u64) -> Result<Dataset, CliError> {
    if let Some(name) = spec.strip_prefix("synth:") {
        let ds = PaperDataset::from_name(name)
            .ok_or_else(|| CliError(format!("unknown catalog dataset `{name}`")))?;
        // The catalog splits internally; rejoin by loading at scale 1 and
        // re-splitting later like any other dataset.
        let tt = ds.load(1.0, seed);
        let mut x = tt.train.x().clone();
        let mut y = tt.train.y().to_vec();
        x = x.vstack(tt.test.x());
        y.extend_from_slice(tt.test.y());
        return Ok(Dataset::new(x, y, tt.train.task())?.with_name(ds.name()));
    }
    let lower = spec.to_ascii_lowercase();
    if lower.ends_with(".csv") {
        let file = std::fs::File::open(spec)?;
        // Heuristic: integer labels with few distinct values => classification.
        Ok(read_csv_auto(file)?)
    } else if lower.ends_with(".libsvm") || lower.ends_with(".svm") || lower.ends_with(".txt") {
        Ok(read_libsvm_auto(spec)?)
    } else {
        Err(CliError(format!(
            "cannot infer format of `{spec}` (use .csv, .libsvm/.svm, or synth:<name>)"
        )))
    }
}

/// Classification iff every raw label is an integer and there are few
/// distinct values (the usual file-format ambiguity heuristic).
fn looks_like_classification(raw_labels: &[f64]) -> bool {
    if raw_labels.is_empty() || raw_labels.iter().any(|l| l.fract() != 0.0) {
        return false;
    }
    let distinct: std::collections::BTreeSet<i64> = raw_labels.iter().map(|&l| l as i64).collect();
    distinct.len() <= 20.max((raw_labels.len() as f64).sqrt() as usize)
}

fn read_libsvm_auto(path: &str) -> Result<Dataset, CliError> {
    // Read raw labels first, then decide the task.
    let raw = read_libsvm_file(path, false)?;
    if looks_like_classification(raw.y()) {
        Ok(read_libsvm_file(path, true)?)
    } else {
        Ok(raw)
    }
}

fn read_csv_auto(file: std::fs::File) -> Result<Dataset, CliError> {
    use std::io::Read;
    let mut content = String::new();
    let mut f = file;
    f.read_to_string(&mut content)?;
    let raw = read_csv(content.as_bytes(), false)?;
    if looks_like_classification(raw.y()) {
        Ok(read_csv(content.as_bytes(), true)?)
    } else {
        Ok(raw)
    }
}

fn parse_pipeline(flags: &Flags) -> Result<Pipeline, CliError> {
    match flags.get("pipeline").unwrap_or("enhanced") {
        "vanilla" => Ok(Pipeline::vanilla()),
        "enhanced" => Ok(Pipeline::enhanced()),
        "random" => Ok(Pipeline::random_folds()),
        other => Err(CliError(format!("unknown pipeline `{other}`"))),
    }
}

fn parse_method(flags: &Flags) -> Result<Method, CliError> {
    Ok(match flags.get("method").unwrap_or("sha") {
        "random" => Method::Random(RandomSearchConfig::default()),
        "sha" => Method::Sha(ShaConfig::default()),
        "hb" => Method::Hyperband(HyperbandConfig::default()),
        "bohb" => Method::Bohb(BohbConfig::default()),
        "asha" => Method::Asha(AshaConfig::default()),
        "pasha" => Method::Pasha(PashaConfig::default()),
        "dehb" => Method::Dehb(DehbConfig::default()),
        "ucb" => Method::Ucb(UcbConfig::default()),
        "thompson" => Method::Thompson(ThompsonConfig::default()),
        "epsgreedy" => Method::EpsGreedy(EpsGreedyConfig::default()),
        "idhb" => Method::Idhb(IdhbConfig::default()),
        other => return Err(CliError(format!("unknown method `{other}`"))),
    })
}

/// Reads `--space-file` / `--evaluator-cmd` into a generic space plus
/// plugin settings. `Ok(None)` when neither flag is present (built-in MLP
/// tuning); an error when only one of the pair is given, the spec file
/// does not parse, or a plugin knob is zero. The evaluator command is
/// whitespace-split: argv[0] plus fixed arguments, no shell.
fn plugin_setup(
    flags: &Flags,
    pipeline: &Pipeline,
) -> Result<Option<(SearchSpace, PluginSettings)>, CliError> {
    match (flags.get("space-file"), flags.get("evaluator-cmd")) {
        (None, None) => Ok(None),
        (Some(_), None) => Err(CliError(
            "--space-file requires --evaluator-cmd (the program evaluating each config)".into(),
        )),
        (None, Some(_)) => Err(CliError(
            "--evaluator-cmd requires --space-file (the search space it is tuned over)".into(),
        )),
        (Some(path), Some(cmd)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("reading --space-file {path}: {e}")))?;
            let spec = SpaceSpec::parse(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
            let command: Vec<String> = cmd.split_whitespace().map(str::to_string).collect();
            if command.is_empty() {
                return Err(CliError("--evaluator-cmd must name a program".into()));
            }
            let settings = PluginSettings {
                command,
                total_budget: flags.get_or("plugin-budget", 100usize)?,
                folds: flags.get_or("plugin-folds", 1usize)?,
                per_config_folds: pipeline.per_config_folds,
            };
            if settings.total_budget == 0 {
                return Err(CliError("--plugin-budget must be at least 1".into()));
            }
            if settings.folds == 0 {
                return Err(CliError("--plugin-folds must be at least 1".into()));
            }
            Ok(Some((spec.search_space(), settings)))
        }
    }
}

/// `bhpo optimize`: full search → refit → report. With `--space-file` and
/// `--evaluator-cmd` the search runs over a declarative space and every
/// trial is a subprocess of the named program (`--data` is not used).
pub fn optimize(flags: &Flags) -> Result<(), CliError> {
    let seed: u64 = flags.get_or("seed", 42)?;
    let method = parse_method(flags)?;
    let pipeline = parse_pipeline(flags)?;
    let plugin = plugin_setup(flags, &pipeline)?;

    if let Some(level) = flags.get("log-level") {
        let level = LogLevel::parse(level)
            .ok_or_else(|| CliError(format!("unknown log level `{level}`")))?;
        obs::set_log_level(level);
    }
    let recorder = build_recorder(flags)?;

    let trial_timeout: f64 = flags.get_or("trial-timeout", 0.0)?;
    let workers: usize = flags.get_or("workers", 1usize)?;
    if workers == 0 {
        return Err(CliError(
            "--workers must be at least 1 (0 would leave no thread to evaluate trials)".into(),
        ));
    }
    let fold_workers: usize = flags.get_or("fold-workers", 1usize)?;
    if fold_workers == 0 {
        return Err(CliError(
            "--fold-workers must be at least 1 (the trial's own thread counts)".into(),
        ));
    }
    let checkpoint_every: usize = flags.get_or("checkpoint-every", 1usize).map_err(|_| {
        CliError(format!(
            "invalid value `{}` for --checkpoint-every (expected a trial count, e.g. \
             --checkpoint-every 5; 0 means final write only)",
            flags.get("checkpoint-every").unwrap_or("")
        ))
    })?;
    let opts = RunOptions {
        failure_policy: FailurePolicy {
            max_retries: flags.get_or("max-retries", 1u32)?,
            trial_timeout_secs: (trial_timeout > 0.0).then_some(trial_timeout),
            ..Default::default()
        },
        checkpoint: flags.get("checkpoint").map(std::path::PathBuf::from),
        checkpoint_every,
        resume: flags.get("resume").is_some(),
        recorder,
        workers,
        fold_workers,
        warm_start: match flags.get("warm-start").unwrap_or("on") {
            "on" | "true" => true,
            "off" | "false" => false,
            other => {
                return Err(CliError(format!(
                    "invalid value `{other}` for --warm-start (expected on|off)"
                )))
            }
        },
        ..RunOptions::default()
    };

    if let Some((space, settings)) = plugin {
        obs_info!(
            "optimizing {} configurations via external evaluator `{}`...",
            space.n_configurations(),
            settings.command[0],
        );
        let row = run_plugin_with(&space, &settings, &method, seed, &opts);
        return report_run(&row, flags);
    }

    let data = load_data(flags.require("data")?, seed)?;
    let (train, test) = match flags.get("test") {
        Some(test_spec) => (data, load_data(test_spec, seed)?),
        None => {
            let mut rng = rng_from_seed(seed);
            let tt = if data.task().is_classification() {
                stratified_train_test_split(&data, 0.2, &mut rng)?
            } else {
                train_test_split(&data, 0.2, &mut rng)?
            };
            (tt.train, tt.test)
        }
    };
    let hps: usize = flags.get_or("hps", 4)?;
    let space = SearchSpace::mlp_table3(hps);
    let base = MlpParams {
        max_iter: flags.get_or("max-iter", 20)?,
        ..Default::default()
    };
    obs_info!(
        "optimizing {} configurations on {} train / {} test instances ({} features, {})...",
        space.n_configurations(),
        train.n_instances(),
        test.n_instances(),
        train.n_features(),
        if train.task().is_classification() {
            "classification"
        } else {
            "regression"
        },
    );
    let row = run_method_with(&train, &test, &space, pipeline, &base, &method, seed, &opts);
    report_run(&row, flags)
}

/// Prints a finished run (scores, best config, robustness counters) and
/// honors the `--json` / `--metrics-out` / `--events-out` / `--trace-out`
/// output flags. Shared by the MLP and plugin paths of `optimize`.
fn report_run(row: &RunResult, flags: &Flags) -> Result<(), CliError> {
    println!(
        "method={} pipeline={} {}: train {:.4} test {:.4}",
        row.method, row.pipeline, row.score_kind, row.train_score, row.test_score
    );
    println!("best configuration: {}", row.best_config_desc);
    println!(
        "search: {:.2}s, {} evaluations, {:.2} GMAC",
        row.search_seconds,
        row.n_evaluations,
        row.search_cost_units as f64 / 1e9
    );
    if row.n_failures > 0 || row.n_resumed > 0 {
        println!(
            "robustness: {} failed trials (imputed), {} resumed from checkpoint",
            row.n_failures, row.n_resumed
        );
    }
    if row.n_continued > 0 {
        println!(
            "warm start: {} trials continued from smaller-budget snapshots",
            row.n_continued
        );
    }
    if let Some(path) = flags.get("json") {
        save_run_result_file(row, path).map_err(|e| CliError(e.to_string()))?;
        obs_info!("wrote {path}");
    }
    if let Some(path) = flags.get("metrics-out") {
        obs::global_metrics()
            .write_snapshot_file(path)
            .map_err(|e| CliError(format!("writing metrics snapshot: {e}")))?;
        obs_info!("wrote {path}");
    }
    if let Some(path) = flags.get("events-out") {
        obs_info!("wrote {path}");
    }
    if let Some(path) = flags.get("trace-out") {
        obs_info!(
            "wrote {path} and {}",
            hpo_core::obs::chrome_trace_path(std::path::Path::new(path)).display()
        );
    }
    Ok(())
}

/// Builds the run recorder from the observability flags: `--events-out`
/// journals to JSONL, `--progress` paints a live line on stderr,
/// `--trace-out` collects hierarchical spans and writes them as JSONL
/// plus a Chrome-trace sibling on flush. With none of them, the recorder
/// is disabled and costs nothing.
fn build_recorder(flags: &Flags) -> Result<Recorder, CliError> {
    let mut builder = Recorder::builder();
    if let Some(path) = flags.get("events-out") {
        builder = builder.journal_to(path);
    }
    if flags.get("progress").is_some() {
        builder = builder.with_progress();
    }
    if let Some(path) = flags.get("trace-out") {
        builder = builder.trace_to(path);
    }
    builder
        .build()
        .map_err(|e| CliError(format!("opening event journal: {e}")))
}

/// `bhpo cv`: score every configuration of the 18-grid by cross-validation.
pub fn cross_validate(flags: &Flags) -> Result<(), CliError> {
    let seed: u64 = flags.get_or("seed", 42)?;
    let data = load_data(flags.require("data")?, seed)?;
    let ratio: f64 = flags.get_or("ratio", 1.0)?;
    if !(0.0 < ratio && ratio <= 1.0) {
        return Err(CliError("--ratio must be in (0, 1]".into()));
    }
    let pipeline = parse_pipeline(flags)?;
    let base = MlpParams {
        max_iter: flags.get_or("max-iter", 20)?,
        ..Default::default()
    };
    let space = SearchSpace::mlp_cv18();
    let evaluator = CvEvaluator::new(&data, pipeline, base.clone(), seed);
    let budget = ((data.n_instances() as f64) * ratio).round() as usize;
    println!(
        "5-fold CV on {} of {} instances ({} scoring):",
        budget,
        data.n_instances(),
        evaluator.score_kind().name()
    );
    let mut rows: Vec<(String, f64, f64, f64)> = space
        .all_configurations()
        .iter()
        .enumerate()
        .map(|(i, cfg)| {
            let params = space.to_params(cfg, &base);
            let out = evaluator.evaluate(&params, budget, evaluator.fold_stream(seed, 0, i as u64));
            (
                space.describe(cfg),
                out.fold_scores.mean(),
                out.fold_scores.std_dev(),
                out.score,
            )
        })
        .collect();
    rows.sort_by(|a, b| compare_scores(b.3, a.3));
    for (desc, mean, std, score) in rows {
        println!("  score={score:.4}  µ={mean:.4} σ={std:.4}  {desc}");
    }
    Ok(())
}

/// `bhpo groups`: show what Operation 1 does to the dataset.
pub fn groups(flags: &Flags) -> Result<(), CliError> {
    let seed: u64 = flags.get_or("seed", 42)?;
    let data = load_data(flags.require("data")?, seed)?;
    let v: usize = flags.get_or("v", 2)?;
    let algo = match flags.get("algo").unwrap_or("kmeans") {
        "kmeans" => ClusterAlgo::BalancedKMeans,
        "meanshift" => ClusterAlgo::MeanShift { quantile: 0.3 },
        "affinity" => ClusterAlgo::AffinityPropagation,
        other => return Err(CliError(format!("unknown clustering algo `{other}`"))),
    };
    let grouping = build_grouping(
        &data,
        &GroupingConfig {
            v,
            algo,
            seed,
            ..Default::default()
        },
    );
    println!(
        "{} instances -> {} groups (sizes {:?}), {} label categories",
        data.n_instances(),
        grouping.n_groups,
        grouping.sizes(),
        grouping.n_label_categories
    );
    // Per-group label composition.
    for (g, members) in grouping.members().iter().enumerate() {
        let mut counts = vec![0usize; grouping.n_label_categories];
        for &i in members {
            counts[grouping.label_category[i]] += 1;
        }
        println!(
            "  group {g}: {} instances, label mix {counts:?}",
            members.len()
        );
    }
    Ok(())
}

/// `bhpo datasets`: list the synthetic catalog.
pub fn datasets() -> Result<(), CliError> {
    println!("catalog stand-ins (use as synth:<name>):");
    for ds in PaperDataset::ALL {
        let tt = ds.load(0.05, 1);
        let task = if ds.is_regression() {
            "regression"
        } else if tt.train.task().n_classes() == Some(2) {
            "binary"
        } else {
            "multi-class"
        };
        println!(
            "  {:<12} {:<12} {:>3} features",
            ds.name(),
            task,
            tt.train.n_features()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::Flags;

    fn flags(s: &str) -> Flags {
        Flags::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn load_synth_dataset() {
        let d = load_data("synth:australian", 1).unwrap();
        assert!(d.n_instances() > 500);
        assert_eq!(d.name(), "australian");
        assert!(load_data("synth:nope", 1).is_err());
    }

    #[test]
    fn load_rejects_unknown_extension() {
        assert!(load_data("data.parquet", 1).is_err());
    }

    #[test]
    fn load_csv_roundtrip() {
        let path = std::env::temp_dir().join("bhpo_cli_test.csv");
        std::fs::write(&path, "1.0,2.0,0\n3.0,4.0,1\n5.0,6.0,0\n7.0,8.0,1\n").unwrap();
        let d = load_data(path.to_str().unwrap(), 1).unwrap();
        assert_eq!(d.n_instances(), 4);
        assert!(d.task().is_classification());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_with_real_labels_is_regression() {
        let path = std::env::temp_dir().join("bhpo_cli_reg.csv");
        std::fs::write(&path, "1.0,2.0,0.25\n3.0,4.0,1.75\n").unwrap();
        let d = load_data(path.to_str().unwrap(), 1).unwrap();
        assert!(!d.task().is_classification());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn method_and_pipeline_parsing() {
        assert!(parse_method(&flags("--method sha")).is_ok());
        assert!(parse_method(&flags("--method dehb")).is_ok());
        assert!(parse_method(&flags("--method gradient")).is_err());
        assert!(parse_pipeline(&flags("--pipeline vanilla")).is_ok());
        assert!(parse_pipeline(&flags("--pipeline turbo")).is_err());
    }

    #[test]
    fn plugin_flags_must_travel_together() {
        let p = Pipeline::enhanced();
        assert!(plugin_setup(&flags("--space-file x.space"), &p).is_err());
        assert!(plugin_setup(&flags("--evaluator-cmd ./eval.sh"), &p).is_err());
        assert!(plugin_setup(&flags("--seed 1"), &p).unwrap().is_none());
    }

    #[test]
    fn plugin_setup_parses_space_file_and_splits_command() {
        let path = std::env::temp_dir().join("bhpo_cli_space.txt");
        std::fs::write(&path, "lr float 0.001..0.1 log\nsolver cat sgd adam\n").unwrap();
        let f = Flags::parse(&[
            "--space-file".to_string(),
            path.display().to_string(),
            "--evaluator-cmd".to_string(),
            "./eval.sh --fast".to_string(),
            "--plugin-budget".to_string(),
            "64".to_string(),
        ])
        .unwrap();
        let (space, settings) = plugin_setup(&f, &Pipeline::enhanced()).unwrap().unwrap();
        assert_eq!(space.n_configurations(), 32);
        assert_eq!(settings.command, vec!["./eval.sh", "--fast"]);
        assert_eq!(settings.total_budget, 64);
        assert_eq!(settings.folds, 1);
        assert!(settings.per_config_folds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plugin_setup_surfaces_spec_errors_with_the_path() {
        let path = std::env::temp_dir().join("bhpo_cli_bad_space.txt");
        std::fs::write(&path, "lr float 5..1\n").unwrap();
        let f = Flags::parse(&[
            "--space-file".to_string(),
            path.display().to_string(),
            "--evaluator-cmd".to_string(),
            "./eval.sh".to_string(),
        ])
        .unwrap();
        let err = plugin_setup(&f, &Pipeline::enhanced()).unwrap_err();
        assert!(err.to_string().contains("bhpo_cli_bad_space"), "{err}");
        assert!(err.to_string().contains("line 1"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn groups_command_runs_on_synth_data() {
        let f = flags("--data synth:australian --v 3");
        groups(&f).unwrap();
    }

    #[test]
    fn datasets_command_lists_catalog() {
        datasets().unwrap();
    }
}
