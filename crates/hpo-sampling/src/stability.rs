//! Proposition 1: sampling stability of group-based subset sampling.
//!
//! The paper models random sampling of a balanced binary dataset as a
//! binomial `B(n, p)` and the group-based sampler as the sum of two
//! binomials `B(n/2, p−ε) + B(n/2, p+ε)` — sampling half the subset from
//! each of two groups whose positive rates straddle `p`. This module makes
//! the proposition computable:
//!
//! * the exact pmf of both samplers;
//! * their variances (`n·p(1−p)` vs `n·p(1−p) − n·ε²`: grouping strictly
//!   reduces variance whenever the groups actually differ);
//! * the probability of drawing a subset whose positive count matches the
//!   dataset's expectation — the paper's "consistent with the distribution"
//!   event.

/// Binomial pmf `P(x; n, p)`, computed in log space for robustness.
pub fn binomial_pmf(x: usize, n: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if x > n {
        return 0.0;
    }
    if p == 0.0 {
        return if x == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if x == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, x) + (x as f64) * p.ln() + ((n - x) as f64) * (1.0 - p).ln();
    ln.exp()
}

/// Pmf of the group sampler: `X = B(n/2, p−ε) + B(n/2, p+ε)` (paper's
/// `P_our`). `n` must be even.
pub fn group_pmf(x: usize, n: usize, p: f64, eps: f64) -> f64 {
    assert!(
        n.is_multiple_of(2),
        "the proposition splits n into two equal groups"
    );
    let half = n / 2;
    let p1 = (p - eps).clamp(0.0, 1.0);
    let p2 = (p + eps).clamp(0.0, 1.0);
    (0..=x.min(half))
        .map(|i| binomial_pmf(i, half, p1) * binomial_pmf(x.saturating_sub(i), half, p2))
        .sum()
}

/// Variance of the positive count under random sampling: `n·p(1−p)`.
pub fn random_sampling_variance(n: usize, p: f64) -> f64 {
    n as f64 * p * (1.0 - p)
}

/// Variance of the positive count under group sampling:
/// `n·p(1−p) − n·ε²` — strictly smaller than random sampling for any ε > 0.
pub fn group_sampling_variance(n: usize, p: f64, eps: f64) -> f64 {
    let half = n as f64 / 2.0;
    let p1 = p - eps;
    let p2 = p + eps;
    half * p1 * (1.0 - p1) + half * p2 * (1.0 - p2)
}

/// Probability that a sampler's positive count exactly matches the dataset
/// expectation `round(n·p)` — the paper's "consistent with the overall
/// distribution" event for the given pmf.
pub fn match_probability(n: usize, p: f64, eps: Option<f64>) -> f64 {
    let target = (n as f64 * p).round() as usize;
    match eps {
        None => binomial_pmf(target, n, p),
        Some(e) => group_pmf(target, n, p, e),
    }
}

fn ln_choose(n: usize, k: usize) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln(n!)` via direct summation (exact enough for the subset sizes the
/// proposition is about; no Stirling error terms to reason about).
fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_pmf_sums_to_one() {
        let total: f64 = (0..=20).map(|x| binomial_pmf(x, 20, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_pmf_hand_values() {
        assert!((binomial_pmf(1, 2, 0.5) - 0.5).abs() < 1e-12);
        assert!((binomial_pmf(0, 3, 0.5) - 0.125).abs() < 1e-12);
        assert_eq!(binomial_pmf(5, 4, 0.5), 0.0);
        assert_eq!(binomial_pmf(0, 10, 0.0), 1.0);
        assert_eq!(binomial_pmf(10, 10, 1.0), 1.0);
    }

    #[test]
    fn group_pmf_sums_to_one() {
        let total: f64 = (0..=20).map(|x| group_pmf(x, 20, 0.5, 0.2)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eps_zero_reduces_to_random_sampling() {
        for x in 0..=10 {
            let a = group_pmf(x, 10, 0.4, 0.0);
            let b = binomial_pmf(x, 10, 0.4);
            assert!((a - b).abs() < 1e-9, "x={x}: {a} vs {b}");
        }
    }

    #[test]
    fn eps_equal_p_gives_deterministic_match() {
        // ε = p: one group has rate 0, the other 2p. For p=0.5 the second
        // group is all-positive — the sampler always draws exactly n/2
        // positives, matching the overall distribution with probability 1.
        let prob = match_probability(10, 0.5, Some(0.5));
        assert!((prob - 1.0).abs() < 1e-9, "got {prob}");
    }

    #[test]
    fn group_sampling_is_more_stable_than_random() {
        // Proposition 1: larger ε ⇒ higher probability of matching the
        // overall distribution, with random sampling the ε=0 floor.
        let n = 20;
        let p = 0.5;
        let random = match_probability(n, p, None);
        let mut prev = random;
        for eps in [0.1, 0.2, 0.3, 0.4, 0.5] {
            let ours = match_probability(n, p, Some(eps));
            assert!(
                ours >= prev - 1e-12,
                "match prob not monotone in ε at {eps}: {ours} < {prev}"
            );
            prev = ours;
        }
        assert!(prev > random, "grouping never helped");
    }

    #[test]
    fn variance_identity_holds() {
        // group variance = random variance − n·ε²
        let (n, p, eps) = (100, 0.5, 0.2);
        let expect = random_sampling_variance(n, p) - n as f64 * eps * eps;
        assert!((group_sampling_variance(n, p, eps) - expect).abs() < 1e-9);
    }

    #[test]
    fn empirical_group_variance_matches_analytic() {
        // Monte-Carlo check of the mixture variance.
        use hpo_data::rng::rng_from_seed;
        use rand::Rng;
        let mut rng = rng_from_seed(1);
        let (n, p, eps) = (40usize, 0.5, 0.3);
        let half = n / 2;
        let trials = 20_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..trials {
            let mut x = 0usize;
            for _ in 0..half {
                if rng.gen::<f64>() < p - eps {
                    x += 1;
                }
            }
            for _ in 0..half {
                if rng.gen::<f64>() < p + eps {
                    x += 1;
                }
            }
            sum += x as f64;
            sum_sq += (x * x) as f64;
        }
        let mean = sum / trials as f64;
        let var = sum_sq / trials as f64 - mean * mean;
        let analytic = group_sampling_variance(n, p, eps);
        assert!(
            (var - analytic).abs() / analytic < 0.06,
            "empirical {var} vs analytic {analytic}"
        );
    }
}
