//! Operation 2: general and special fold construction (paper §III-B).
//!
//! Given the groups Ω from Operation 1 and a budget `b_t`, the evaluator
//! needs `k_gen + k_spe` disjoint folds:
//!
//! * **general folds** mirror the global distribution — each is sampled from
//!   every group proportionally to the group's size (group-stratified);
//! * **special folds** deliberately deviate — fold `i` draws most of its
//!   instances (e.g. 80%) from group `ω_i` and the rest stratified from the
//!   remaining groups, so each special fold probes the configuration under
//!   one group's distribution.
//!
//! The paper sets `k_spe = v` and keeps `k_gen + k_spe = 5`, matching the
//! conventional 5-fold CV (experiments: `k_gen = 3`, `k_spe = 2`, 80/20).

use crate::groups::Grouping;
use crate::kfold::Folds;
use hpo_data::rng::sample_without_replacement;
use rand::Rng;

/// Configuration of Operation 2.
#[derive(Clone, Copy, Debug)]
pub struct GenFoldsConfig {
    /// Number of general (distribution-mirroring) folds (paper: 3).
    pub k_gen: usize,
    /// Number of special (group-biased) folds (paper: 2 = v).
    pub k_spe: usize,
    /// Fraction of a special fold drawn from its own group (paper: 0.8).
    pub special_own_frac: f64,
}

impl Default for GenFoldsConfig {
    fn default() -> Self {
        GenFoldsConfig {
            k_gen: 3,
            k_spe: 2,
            special_own_frac: 0.8,
        }
    }
}

impl GenFoldsConfig {
    /// Total fold count `k_gen + k_spe`.
    pub fn total_folds(&self) -> usize {
        self.k_gen + self.k_spe
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on zero total folds or an own-fraction outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(self.total_folds() >= 1, "need at least one fold");
        assert!(
            self.special_own_frac > 0.0 && self.special_own_frac <= 1.0,
            "special_own_frac must be in (0,1]"
        );
    }
}

/// Operation 2: builds `k_gen + k_spe` disjoint folds over a budgeted subset
/// of the grouped instances.
///
/// ```
/// use hpo_sampling::folds::{gen_folds, GenFoldsConfig};
/// use hpo_sampling::groups::Grouping;
/// use hpo_data::rng::rng_from_seed;
///
/// // 100 instances in two equal groups.
/// let grouping = Grouping {
///     group_of: (0..100).map(|i| i % 2).collect(),
///     n_groups: 2,
///     label_category: vec![0; 100],
///     n_label_categories: 1,
/// };
/// let mut rng = rng_from_seed(7);
/// let folds = gen_folds(&grouping, 50, &GenFoldsConfig::default(), &mut rng);
/// assert_eq!(folds.len(), 5);                                // 3 general + 2 special
/// assert_eq!(folds.iter().map(Vec::len).sum::<usize>(), 50); // exact budget
/// ```
///
/// The folds' union has `min(budget, n)` instances. Special fold `i` biases
/// towards group `i mod v`; general folds are group-stratified. When a group
/// cannot supply a special fold's own-share, the shortfall is filled from
/// the other groups (the fold degrades gracefully towards a general fold).
///
/// # Panics
/// Panics when the (capped) budget is smaller than the fold count.
pub fn gen_folds(
    grouping: &Grouping,
    budget: usize,
    config: &GenFoldsConfig,
    rng: &mut impl Rng,
) -> Folds {
    config.validate();
    let n = grouping.group_of.len();
    let budget = budget.min(n);
    let k = config.total_folds();
    assert!(
        budget >= k,
        "budget {budget} cannot fill {k} folds with at least one instance each"
    );

    // Shuffled per-group pools we draw from without replacement.
    let mut pools: Vec<Vec<usize>> = grouping
        .members()
        .into_iter()
        .map(|members| {
            let order = sample_without_replacement(members.len(), members.len(), rng);
            order.into_iter().map(|i| members[i]).collect()
        })
        .collect();
    let group_sizes: Vec<usize> = pools.iter().map(Vec::len).collect();
    let total: usize = group_sizes.iter().sum();

    // Fold sizes: distribute the remainder over the first folds.
    let base = budget / k;
    let mut fold_sizes = vec![base; k];
    for item in fold_sizes.iter_mut().take(budget % k) {
        *item += 1;
    }

    let mut folds: Folds = Vec::with_capacity(k);

    // Special folds first: they need their own group's instances.
    #[allow(clippy::needless_range_loop)] // i selects both fold size and own group
    for i in 0..config.k_spe {
        let size = fold_sizes[i];
        let own = i % grouping.n_groups;
        let want_own = ((size as f64) * config.special_own_frac).round() as usize;
        let want_own = want_own.min(size);
        let mut fold = draw(&mut pools, own, want_own);
        let missing = size - fold.len();
        fold.extend(draw_stratified(
            &mut pools,
            &group_sizes,
            missing,
            Some(own),
        ));
        // If other groups also ran dry, take whatever is left anywhere.
        let missing = size - fold.len();
        if missing > 0 {
            fold.extend(draw_any(&mut pools, missing));
        }
        folds.push(fold);
    }

    // General folds: group-stratified by original group share.
    for &size in fold_sizes.iter().take(k).skip(config.k_spe) {
        let mut fold = draw_stratified(&mut pools, &group_sizes, size, None);
        let missing = size - fold.len();
        if missing > 0 {
            fold.extend(draw_any(&mut pools, missing));
        }
        folds.push(fold);
    }

    debug_assert_eq!(folds.iter().map(Vec::len).sum::<usize>(), budget.min(total));
    // Order folds as [general..., special...] so callers can tell them apart
    // positionally: the first k_gen entries are general.
    folds.rotate_left(config.k_spe);
    folds
}

/// Draws up to `count` instances from pool `g`.
fn draw(pools: &mut [Vec<usize>], g: usize, count: usize) -> Vec<usize> {
    let pool = &mut pools[g];
    let take = count.min(pool.len());
    pool.split_off(pool.len() - take)
}

/// Draws `count` instances across pools proportionally to `weights`
/// (largest-remainder allocation), skipping `exclude`. May return fewer if
/// pools run dry.
fn draw_stratified(
    pools: &mut [Vec<usize>],
    weights: &[usize],
    count: usize,
    exclude: Option<usize>,
) -> Vec<usize> {
    let eligible: Vec<usize> = (0..pools.len())
        .filter(|&g| Some(g) != exclude && !pools[g].is_empty())
        .collect();
    if eligible.is_empty() || count == 0 {
        return Vec::new();
    }
    let total_w: usize = eligible.iter().map(|&g| weights[g].max(1)).sum();
    // Largest-remainder apportionment.
    let mut want: Vec<(usize, usize, f64)> = eligible
        .iter()
        .map(|&g| {
            let exact = count as f64 * weights[g].max(1) as f64 / total_w as f64;
            (g, exact.floor() as usize, exact.fract())
        })
        .collect();
    let mut allocated: usize = want.iter().map(|w| w.1).sum();
    want.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut i = 0;
    while allocated < count && i < want.len() {
        want[i].1 += 1;
        allocated += 1;
        i += 1;
    }
    let mut out = Vec::with_capacity(count);
    for (g, w, _) in want {
        out.extend(draw(pools, g, w));
    }
    // Top up from any eligible pool if rounding met empty pools.
    if out.len() < count {
        for &g in &eligible {
            let missing = count - out.len();
            if missing == 0 {
                break;
            }
            out.extend(draw(pools, g, missing));
        }
    }
    out
}

/// Draws `count` instances from whichever pools still have instances.
fn draw_any(pools: &mut [Vec<usize>], count: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(count);
    for g in 0..pools.len() {
        let missing = count - out.len();
        if missing == 0 {
            break;
        }
        out.extend(draw(pools, g, missing));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::rng::rng_from_seed;
    use std::collections::HashSet;

    /// 100 instances in 2 groups: 0..60 -> group 0, 60..100 -> group 1.
    fn toy_grouping() -> Grouping {
        let group_of: Vec<usize> = (0..100).map(|i| usize::from(i >= 60)).collect();
        Grouping {
            group_of,
            n_groups: 2,
            label_category: vec![0; 100],
            n_label_categories: 1,
        }
    }

    fn assert_disjoint(folds: &Folds) {
        let all: Vec<usize> = folds.iter().flatten().copied().collect();
        let set: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(all.len(), set.len(), "folds overlap");
    }

    #[test]
    fn folds_are_disjoint_and_cover_the_budget() {
        let g = toy_grouping();
        let mut rng = rng_from_seed(1);
        let folds = gen_folds(&g, 50, &GenFoldsConfig::default(), &mut rng);
        assert_eq!(folds.len(), 5);
        assert_disjoint(&folds);
        assert_eq!(folds.iter().map(Vec::len).sum::<usize>(), 50);
        for f in &folds {
            assert_eq!(f.len(), 10);
        }
    }

    #[test]
    fn special_folds_are_biased_to_their_group() {
        let g = toy_grouping();
        let mut rng = rng_from_seed(2);
        let cfg = GenFoldsConfig::default();
        let folds = gen_folds(&g, 50, &cfg, &mut rng);
        // folds[k_gen..] are the special folds; fold k_gen+i biases group i.
        for (i, fold) in folds[cfg.k_gen..].iter().enumerate() {
            let own = i % g.n_groups;
            let own_count = fold.iter().filter(|&&x| g.group_of[x] == own).count();
            let frac = own_count as f64 / fold.len() as f64;
            assert!(
                (frac - 0.8).abs() < 0.11,
                "special fold {i} own-fraction {frac}"
            );
        }
    }

    #[test]
    fn general_folds_mirror_group_shares() {
        let g = toy_grouping(); // 60/40 split
        let mut rng = rng_from_seed(3);
        let cfg = GenFoldsConfig::default();
        let folds = gen_folds(&g, 50, &cfg, &mut rng);
        for fold in &folds[..cfg.k_gen] {
            let g0 = fold.iter().filter(|&&x| g.group_of[x] == 0).count();
            let frac = g0 as f64 / fold.len() as f64;
            assert!(
                (frac - 0.6).abs() < 0.25,
                "general fold group share {frac} (expect ~0.6)"
            );
        }
    }

    #[test]
    fn budget_larger_than_population_is_capped() {
        let g = toy_grouping();
        let mut rng = rng_from_seed(4);
        let folds = gen_folds(&g, 1000, &GenFoldsConfig::default(), &mut rng);
        assert_eq!(folds.iter().map(Vec::len).sum::<usize>(), 100);
    }

    #[test]
    fn tiny_group_degrades_gracefully() {
        // group 1 has only 3 instances; its special fold cannot reach 80%.
        let mut group_of = vec![0usize; 97];
        group_of.extend([1usize; 3]);
        let g = Grouping {
            group_of,
            n_groups: 2,
            label_category: vec![0; 100],
            n_label_categories: 1,
        };
        let mut rng = rng_from_seed(5);
        let folds = gen_folds(&g, 60, &GenFoldsConfig::default(), &mut rng);
        assert_disjoint(&folds);
        assert_eq!(folds.iter().map(Vec::len).sum::<usize>(), 60);
        for f in &folds {
            assert_eq!(f.len(), 12);
        }
    }

    #[test]
    fn all_general_or_all_special_configurations_work() {
        let g = toy_grouping();
        for (k_gen, k_spe) in [(5, 0), (0, 5), (1, 4), (4, 1)] {
            let mut rng = rng_from_seed(6);
            let cfg = GenFoldsConfig {
                k_gen,
                k_spe,
                special_own_frac: 0.8,
            };
            let folds = gen_folds(&g, 50, &cfg, &mut rng);
            assert_eq!(folds.len(), 5, "k_gen={k_gen} k_spe={k_spe}");
            assert_disjoint(&folds);
        }
    }

    #[test]
    fn more_special_folds_than_groups_wraps_around() {
        let g = toy_grouping(); // 2 groups
        let mut rng = rng_from_seed(7);
        let cfg = GenFoldsConfig {
            k_gen: 1,
            k_spe: 4,
            special_own_frac: 0.8,
        };
        let folds = gen_folds(&g, 50, &cfg, &mut rng);
        assert_eq!(folds.len(), 5);
        assert_disjoint(&folds);
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn budget_below_fold_count_panics() {
        let g = toy_grouping();
        let mut rng = rng_from_seed(8);
        gen_folds(&g, 3, &GenFoldsConfig::default(), &mut rng);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = toy_grouping();
        let a = gen_folds(&g, 40, &GenFoldsConfig::default(), &mut rng_from_seed(9));
        let b = gen_folds(&g, 40, &GenFoldsConfig::default(), &mut rng_from_seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn uneven_budget_distributes_remainder() {
        let g = toy_grouping();
        let mut rng = rng_from_seed(10);
        let folds = gen_folds(&g, 52, &GenFoldsConfig::default(), &mut rng);
        let mut sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![10, 10, 10, 11, 11]);
    }
}
