//! Instance grouping and fold construction — the heart of the paper's method.
//!
//! * [`groups`] — Operation 1: merge feature clusters `C_x` and label
//!   categories `C_y` into instance groups Ω (paper §III-A).
//! * [`folds`] — Operation 2: build general folds (group-stratified, mirror
//!   the global distribution) and special folds (biased towards one group)
//!   for cross-validation (paper §III-B).
//! * [`kfold`] — the vanilla baselines: random K-fold and label-stratified
//!   K-fold, plus subset sampling at a budget.
//! * [`strategy`] — a single [`strategy::FoldStrategy`] enum the evaluator
//!   dispatches on, so vanilla and enhanced pipelines share one code path.
//! * [`stability`] — the analytic machinery behind Proposition 1 (binomial
//!   mixture sampling stability).

#![warn(missing_docs)]

pub mod folds;
pub mod groups;
pub mod kfold;
pub mod stability;
pub mod strategy;

pub use folds::{gen_folds, GenFoldsConfig};
pub use groups::{build_grouping, gen_groups, Grouping, GroupingConfig};
pub use strategy::FoldStrategy;
