//! Vanilla K-fold baselines and budgeted subset sampling.
//!
//! These are the paper's comparison points (§IV-C): random K-fold and
//! label-stratified K-fold, both over a budgeted subset of the training
//! data. A fold set is always a list of `k` disjoint index lists; fold `i`
//! serves once as the validation set while the others train.

use hpo_data::rng::sample_without_replacement;
use hpo_data::split::{random_subsample_indices, stratified_subsample_indices};
use rand::Rng;

/// `k` disjoint folds of instance indices (into the training dataset).
pub type Folds = Vec<Vec<usize>>;

/// Splits `indices` into `k` random folds of near-equal size.
///
/// # Panics
/// Panics when `k == 0` or `k > indices.len()`.
pub fn split_into_k(indices: &[usize], k: usize, rng: &mut impl Rng) -> Folds {
    assert!(k >= 1, "need at least one fold");
    assert!(
        k <= indices.len(),
        "cannot split {} instances into {k} folds",
        indices.len()
    );
    let mut shuffled = indices.to_vec();
    for i in (1..shuffled.len()).rev() {
        let j = rng.gen_range(0..=i);
        shuffled.swap(i, j);
    }
    let mut folds: Folds = vec![Vec::with_capacity(shuffled.len() / k + 1); k];
    for (pos, idx) in shuffled.into_iter().enumerate() {
        folds[pos % k].push(idx);
    }
    folds
}

/// Random K-fold over a budgeted subset: samples `budget` instances
/// uniformly from `0..n`, then splits them into `k` random folds.
pub fn random_kfold(n: usize, budget: usize, k: usize, rng: &mut impl Rng) -> Folds {
    let subset = random_subsample_indices(n, budget, rng);
    split_into_k(&subset, k, rng)
}

/// Label-stratified K-fold over a budgeted subset: samples `budget`
/// instances preserving the class balance, then deals each class's
/// instances round-robin across folds so every fold mirrors the balance.
pub fn stratified_kfold(
    labels: &[usize],
    n_categories: usize,
    budget: usize,
    k: usize,
    rng: &mut impl Rng,
) -> Folds {
    let subset = stratified_subsample_indices(labels, n_categories, budget, rng);
    stratified_split_into_k(&subset, labels, n_categories, k, rng)
}

/// Splits an index set into `k` folds, stratifying on `labels`.
///
/// # Panics
/// Panics when `k == 0` or `k > indices.len()`.
pub fn stratified_split_into_k(
    indices: &[usize],
    labels: &[usize],
    n_categories: usize,
    k: usize,
    rng: &mut impl Rng,
) -> Folds {
    assert!(k >= 1, "need at least one fold");
    assert!(
        k <= indices.len(),
        "cannot split {} instances into {k} folds",
        indices.len()
    );
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_categories];
    for &i in indices {
        per_class[labels[i]].push(i);
    }
    let mut folds: Folds = vec![Vec::with_capacity(indices.len() / k + 1); k];
    // Offset the round-robin start per class so small classes don't all pile
    // into fold 0.
    let mut offset = 0usize;
    for members in per_class.iter_mut() {
        if members.is_empty() {
            continue;
        }
        // shuffle within the class
        let order = sample_without_replacement(members.len(), members.len(), rng);
        for (pos, &ord) in order.iter().enumerate() {
            folds[(pos + offset) % k].push(members[ord]);
        }
        offset = (offset + members.len()) % k;
    }
    folds
}

/// Flattens all folds except `val_fold` into one training index list.
pub fn train_indices_for(folds: &Folds, val_fold: usize) -> Vec<usize> {
    folds
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != val_fold)
        .flat_map(|(_, f)| f.iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::rng::rng_from_seed;
    use std::collections::HashSet;

    fn assert_partition(folds: &Folds, expect_total: usize) {
        let all: Vec<usize> = folds.iter().flatten().copied().collect();
        let set: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(all.len(), set.len(), "folds overlap");
        assert_eq!(all.len(), expect_total, "folds lose or invent instances");
    }

    #[test]
    fn split_into_k_is_a_balanced_partition() {
        let mut rng = rng_from_seed(1);
        let indices: Vec<usize> = (0..103).collect();
        let folds = split_into_k(&indices, 5, &mut rng);
        assert_partition(&folds, 103);
        for f in &folds {
            assert!((20..=21).contains(&f.len()), "fold size {}", f.len());
        }
    }

    #[test]
    fn random_kfold_respects_budget() {
        let mut rng = rng_from_seed(2);
        let folds = random_kfold(1000, 100, 5, &mut rng);
        assert_partition(&folds, 100);
        assert!(folds.iter().flatten().all(|&i| i < 1000));
    }

    #[test]
    fn stratified_kfold_preserves_balance_per_fold() {
        let labels: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let mut rng = rng_from_seed(3);
        let folds = stratified_kfold(&labels, 2, 100, 5, &mut rng);
        assert_partition(&folds, 100);
        for f in &folds {
            let ones = f.iter().filter(|&&i| labels[i] == 1).count();
            // each fold of 20 should have ~10 of each class (±1)
            assert!(
                (9..=11).contains(&ones),
                "fold balance broken: {ones}/{}",
                f.len()
            );
        }
    }

    #[test]
    fn stratified_split_spreads_small_classes() {
        // 5 instances of class 1 across 5 folds: each fold gets exactly one.
        let labels: Vec<usize> = (0..50).map(|i| usize::from(i >= 45)).collect();
        let indices: Vec<usize> = (0..50).collect();
        let mut rng = rng_from_seed(4);
        let folds = stratified_split_into_k(&indices, &labels, 2, 5, &mut rng);
        assert_partition(&folds, 50);
        for f in &folds {
            let minority = f.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(minority, 1, "minority not spread: {folds:?}");
        }
    }

    #[test]
    fn train_indices_exclude_validation_fold() {
        let folds: Folds = vec![vec![0, 1], vec![2, 3], vec![4]];
        let train = train_indices_for(&folds, 1);
        assert_eq!(train, vec![0, 1, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_folds_panics() {
        let mut rng = rng_from_seed(5);
        split_into_k(&[1, 2], 3, &mut rng);
    }

    #[test]
    fn deterministic_per_seed() {
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let a = stratified_kfold(&labels, 3, 30, 5, &mut rng_from_seed(7));
        let b = stratified_kfold(&labels, 3, 30, 5, &mut rng_from_seed(7));
        assert_eq!(a, b);
    }
}
