//! The fold-strategy enum the evaluator dispatches on.
//!
//! One entry point, [`FoldStrategy::build`], produces the fold set for a
//! configuration evaluation at a given budget, whether the pipeline is
//! vanilla (random / label-stratified) or enhanced (group-based general +
//! special folds). This keeps the bandit methods entirely agnostic of which
//! variant is running — exactly how the paper plugs its method into SHA,
//! Hyperband and BOHB.

use crate::folds::{gen_folds, GenFoldsConfig};
use crate::groups::Grouping;
use crate::kfold::{random_kfold, stratified_kfold, Folds};
use rand::Rng;

/// How cross-validation folds are constructed for each evaluation.
#[derive(Clone, Debug)]
pub enum FoldStrategy {
    /// Vanilla random K-fold over a random budgeted subset.
    Random {
        /// Number of folds.
        k: usize,
    },
    /// Vanilla label-stratified K-fold over a stratified budgeted subset.
    StratifiedLabel {
        /// Number of folds.
        k: usize,
    },
    /// Group-stratified K-fold (the paper's grouping without special folds —
    /// used by the Table V ablation).
    StratifiedGroup {
        /// Number of folds.
        k: usize,
    },
    /// The paper's full Operation 2: general + special folds from groups.
    GeneralSpecial(GenFoldsConfig),
}

impl FoldStrategy {
    /// The paper's default enhanced strategy (3 general + 2 special, 80/20).
    pub fn paper_default() -> Self {
        FoldStrategy::GeneralSpecial(GenFoldsConfig::default())
    }

    /// Total number of folds this strategy produces.
    pub fn n_folds(&self) -> usize {
        match self {
            FoldStrategy::Random { k }
            | FoldStrategy::StratifiedLabel { k }
            | FoldStrategy::StratifiedGroup { k } => *k,
            FoldStrategy::GeneralSpecial(cfg) => cfg.total_folds(),
        }
    }

    /// Whether this strategy needs a [`Grouping`] to operate.
    pub fn needs_grouping(&self) -> bool {
        matches!(
            self,
            FoldStrategy::StratifiedGroup { .. } | FoldStrategy::GeneralSpecial(_)
        )
    }

    /// Builds the fold set for one evaluation.
    ///
    /// `n` is the training-set size, `labels` the per-instance label
    /// categories (used by the stratified variant), `grouping` the Operation 1
    /// output (required by the group-based variants), and `budget` the
    /// instance budget `b_t`.
    ///
    /// # Panics
    /// Panics when a group-based strategy is called without a grouping, or
    /// when the budget cannot fill the folds.
    pub fn build(
        &self,
        n: usize,
        labels: &[usize],
        n_label_categories: usize,
        grouping: Option<&Grouping>,
        budget: usize,
        rng: &mut impl Rng,
    ) -> Folds {
        let budget = budget.min(n);
        match self {
            FoldStrategy::Random { k } => random_kfold(n, budget, *k, rng),
            FoldStrategy::StratifiedLabel { k } => {
                stratified_kfold(labels, n_label_categories, budget, *k, rng)
            }
            FoldStrategy::StratifiedGroup { k } => {
                let grouping = grouping.expect("StratifiedGroup requires a grouping");
                // Group-stratified subset + folds == Operation 2 with zero
                // special folds.
                let cfg = GenFoldsConfig {
                    k_gen: *k,
                    k_spe: 0,
                    special_own_frac: 0.8,
                };
                gen_folds(grouping, budget, &cfg, rng)
            }
            FoldStrategy::GeneralSpecial(cfg) => {
                let grouping = grouping.expect("GeneralSpecial requires a grouping");
                gen_folds(grouping, budget, cfg, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::rng::rng_from_seed;

    fn toy_grouping(n: usize) -> Grouping {
        Grouping {
            group_of: (0..n).map(|i| i % 2).collect(),
            n_groups: 2,
            label_category: (0..n).map(|i| i % 3).collect(),
            n_label_categories: 3,
        }
    }

    #[test]
    fn every_strategy_builds_k_disjoint_folds() {
        let n = 120;
        let g = toy_grouping(n);
        let labels = g.label_category.clone();
        let strategies = [
            FoldStrategy::Random { k: 5 },
            FoldStrategy::StratifiedLabel { k: 5 },
            FoldStrategy::StratifiedGroup { k: 5 },
            FoldStrategy::paper_default(),
        ];
        for s in strategies {
            let mut rng = rng_from_seed(1);
            let folds = s.build(n, &labels, 3, Some(&g), 60, &mut rng);
            assert_eq!(folds.len(), 5, "{s:?}");
            let total: usize = folds.iter().map(Vec::len).sum();
            assert_eq!(total, 60, "{s:?}");
            let mut all: Vec<usize> = folds.into_iter().flatten().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 60, "{s:?} folds overlap");
        }
    }

    #[test]
    fn n_folds_matches_build_output() {
        assert_eq!(FoldStrategy::Random { k: 4 }.n_folds(), 4);
        assert_eq!(FoldStrategy::paper_default().n_folds(), 5);
    }

    #[test]
    fn needs_grouping_flags_group_strategies() {
        assert!(!FoldStrategy::Random { k: 5 }.needs_grouping());
        assert!(!FoldStrategy::StratifiedLabel { k: 5 }.needs_grouping());
        assert!(FoldStrategy::StratifiedGroup { k: 5 }.needs_grouping());
        assert!(FoldStrategy::paper_default().needs_grouping());
    }

    #[test]
    #[should_panic(expected = "requires a grouping")]
    fn group_strategy_without_grouping_panics() {
        let mut rng = rng_from_seed(2);
        FoldStrategy::paper_default().build(100, &[0; 100], 1, None, 50, &mut rng);
    }
}
