//! Operation 1: instance grouping from features and labels (paper §III-A).
//!
//! Before optimization starts, instances are clustered on their features
//! (balanced k-means, `C_x`) and categorized on their labels (rare-class
//! merge / regression binning, `C_y`). [`gen_groups`] then mixes the two
//! into `v` groups:
//!
//! 1. per cluster, the top-k classes by count claim their instances for the
//!    cluster's group;
//! 2. every remaining instance goes to the group of the cluster where its
//!    class is most concentrated.
//!
//! The result is a partition that reflects feature structure *and* label
//! structure, which the fold construction (Operation 2) samples from.

use hpo_cluster::affinity::{affinity_propagation, AffinityConfig};
use hpo_cluster::balanced::{balanced_kmeans, BalancedKMeansConfig};
use hpo_cluster::meanshift::{estimate_bandwidth, mean_shift, MeanShiftConfig};
use hpo_data::dataset::Dataset;
use hpo_data::labels::label_categories;

/// Which clustering algorithm drives the feature categorization `C_x`.
///
/// The paper uses balanced k-means and names mean-shift and affinity
/// propagation as drop-in alternatives (§III-A). The density-based
/// algorithms pick their own cluster count; [`build_grouping`] caps it at
/// `v` by merging the smallest clusters, so the fold construction always
/// sees at most `v` groups.
#[derive(Clone, Debug, Default)]
pub enum ClusterAlgo {
    /// The paper's default: k-means with the `r_group` re-clustering loop.
    #[default]
    BalancedKMeans,
    /// Flat-kernel mean-shift; bandwidth estimated at the given neighbour
    /// quantile.
    MeanShift {
        /// Quantile for the bandwidth heuristic (e.g. 0.3).
        quantile: f64,
    },
    /// Affinity propagation with the median-similarity preference.
    AffinityPropagation,
}

/// Configuration for the full grouping pipeline ([`build_grouping`]).
#[derive(Clone, Debug)]
pub struct GroupingConfig {
    /// Number of groups `v` (= clusters = special folds; paper keeps `v ≤ 5`,
    /// experiments use 2).
    pub v: usize,
    /// Minimum cluster size ratio for the balanced k-means (`r_group`,
    /// paper: 0.8).
    pub r_group: f64,
    /// Quantile bins used to categorize regression labels.
    pub regression_bins: usize,
    /// Clustering algorithm for the feature categorization.
    pub algo: ClusterAlgo,
    /// Instances above which density-based algorithms (O(n²)) cluster a
    /// subsample and assign the rest by nearest exemplar/mode — the paper's
    /// "take only a part of the dataset for training the cluster".
    pub cluster_sample_cap: usize,
    /// RNG seed for clustering.
    pub seed: u64,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        GroupingConfig {
            v: 2,
            r_group: 0.8,
            regression_bins: 4,
            algo: ClusterAlgo::BalancedKMeans,
            cluster_sample_cap: 1000,
            seed: 0,
        }
    }
}

/// A partition of the training instances into `v` groups.
#[derive(Clone, Debug)]
pub struct Grouping {
    /// Group index per instance.
    pub group_of: Vec<usize>,
    /// Number of groups `v`.
    pub n_groups: usize,
    /// Label category per instance (`C_y` after rare-class merge/binning) —
    /// kept because general folds stratify on it within groups.
    pub label_category: Vec<usize>,
    /// Number of label categories.
    pub n_label_categories: usize,
}

impl Grouping {
    /// Instance indices of each group.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.n_groups];
        for (i, &g) in self.group_of.iter().enumerate() {
            members[g].push(i);
        }
        members
    }

    /// Instance count per group.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_groups];
        for &g in &self.group_of {
            sizes[g] += 1;
        }
        sizes
    }
}

/// Operation 1: merges feature clusters and label categories into groups.
///
/// `clusters[i] ∈ 0..v` is the feature cluster of instance `i` (`c_i^x`);
/// `classes[i] ∈ 0..u` its label category (`c_i^y`). Returns a group index
/// per instance, with `v` groups (one per cluster).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn gen_groups(clusters: &[usize], classes: &[usize], v: usize, u: usize) -> Vec<usize> {
    assert_eq!(clusters.len(), classes.len(), "length mismatch");
    assert!(!clusters.is_empty(), "cannot group zero instances");
    assert!(v >= 1 && u >= 1, "need at least one cluster and one class");
    let n = clusters.len();

    // counts[class][cluster]
    let mut counts = vec![vec![0usize; v]; u];
    for (&cl, &cy) in clusters.iter().zip(classes) {
        counts[cy][cl] += 1;
    }

    // Stage 1: per cluster, the top-k classes claim their instances.
    // k is derived from the category/cluster ratio so that, collectively,
    // the stage-1 claims cover roughly every class once.
    let top_k = usize::max(1, u.div_ceil(v));
    let mut claimed = vec![vec![false; v]; u]; // claimed[class][cluster]
    for j in 0..v {
        let mut class_counts: Vec<(usize, usize)> = (0..u).map(|c| (c, counts[c][j])).collect();
        class_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(class, count) in class_counts.iter().take(top_k) {
            if count > 0 {
                claimed[class][j] = true;
            }
        }
    }

    // Stage 2 assignment for unclaimed (class, cluster) pairs: the group of
    // the cluster with the highest share of that class.
    let best_cluster_for_class: Vec<usize> = (0..u)
        .map(|c| {
            (0..v)
                .max_by(|&a, &b| counts[c][a].cmp(&counts[c][b]))
                .unwrap_or(0)
        })
        .collect();

    let mut group_of = vec![0usize; n];
    for i in 0..n {
        let (cl, cy) = (clusters[i], classes[i]);
        group_of[i] = if claimed[cy][cl] {
            cl
        } else {
            best_cluster_for_class[cy]
        };
    }
    group_of
}

/// Runs the full §III-A pipeline on a dataset: feature clustering (per
/// `config.algo`), label categorization, then [`gen_groups`].
pub fn build_grouping(data: &Dataset, config: &GroupingConfig) -> Grouping {
    assert!(
        data.n_instances() >= config.v,
        "dataset smaller than the group count"
    );
    let (assignments, v) = cluster_features(data, config);
    let (label_category, n_label_categories) = label_categories(data, config.regression_bins);
    let group_of = gen_groups(&assignments, &label_category, v, n_label_categories.max(1));
    Grouping {
        group_of,
        n_groups: v,
        label_category,
        n_label_categories: n_label_categories.max(1),
    }
}

/// Feature clustering per the configured algorithm. Returns `(c_i^x, v)`
/// with every assignment below `v` and `v ≤ config.v`.
fn cluster_features(data: &Dataset, config: &GroupingConfig) -> (Vec<usize>, usize) {
    match config.algo {
        ClusterAlgo::BalancedKMeans => {
            let clustering = balanced_kmeans(
                data.x(),
                &BalancedKMeansConfig {
                    k: config.v,
                    r_group: config.r_group,
                    seed: config.seed,
                    ..Default::default()
                },
            );
            (clustering.assignments, config.v)
        }
        ClusterAlgo::MeanShift { quantile } => {
            let (x, sample) = subsample_for_clustering(data, config);
            let bw = estimate_bandwidth(&x, quantile);
            let result = mean_shift(
                &x,
                &MeanShiftConfig {
                    bandwidth: bw,
                    ..Default::default()
                },
            );
            let assignments = extend_by_nearest(data, &x, &result.assignments, sample.as_deref());
            cap_clusters(&assignments, config.v)
        }
        ClusterAlgo::AffinityPropagation => {
            let (x, sample) = subsample_for_clustering(data, config);
            let result = affinity_propagation(&x, &AffinityConfig::default());
            let assignments = extend_by_nearest(data, &x, &result.assignments, sample.as_deref());
            cap_clusters(&assignments, config.v)
        }
    }
}

/// O(n²) algorithms cluster at most `cluster_sample_cap` instances.
/// Returns the clustered matrix and, when subsampled, the chosen indices.
fn subsample_for_clustering(
    data: &Dataset,
    config: &GroupingConfig,
) -> (hpo_data::matrix::Matrix, Option<Vec<usize>>) {
    let n = data.n_instances();
    if n <= config.cluster_sample_cap {
        return (data.x().clone(), None);
    }
    let mut rng = hpo_data::rng::rng_from_seed(config.seed);
    let sample = hpo_data::rng::sample_without_replacement(n, config.cluster_sample_cap, &mut rng);
    (data.x().select_rows(&sample), Some(sample))
}

/// Propagates sample-cluster assignments to the full dataset by nearest
/// clustered instance (1-NN); identity when no subsample happened.
fn extend_by_nearest(
    data: &Dataset,
    sample_x: &hpo_data::matrix::Matrix,
    sample_assignments: &[usize],
    sample: Option<&[usize]>,
) -> Vec<usize> {
    let Some(sample_idx) = sample else {
        return sample_assignments.to_vec();
    };
    use hpo_data::matrix::Matrix;
    let mut out = vec![usize::MAX; data.n_instances()];
    for (pos, &orig) in sample_idx.iter().enumerate() {
        out[orig] = sample_assignments[pos];
    }
    for (i, slot) in out.iter_mut().enumerate() {
        if *slot != usize::MAX {
            continue;
        }
        let row = data.instance(i);
        let nearest = (0..sample_x.rows())
            .min_by(|&a, &b| {
                Matrix::dist_sq(row, sample_x.row(a))
                    .partial_cmp(&Matrix::dist_sq(row, sample_x.row(b)))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty sample");
        *slot = sample_assignments[nearest];
    }
    out
}

/// Remaps an arbitrary clustering to at most `v` clusters: the `v − 1`
/// largest keep their identity, everything else merges into the last slot.
/// Cluster ids are compacted to `0..v'` (`v' ≤ v`).
pub fn cap_clusters(assignments: &[usize], v: usize) -> (Vec<usize>, usize) {
    assert!(v >= 1, "need at least one cluster");
    let max_id = assignments.iter().copied().max().unwrap_or(0);
    let mut sizes = vec![0usize; max_id + 1];
    for &a in assignments {
        sizes[a] += 1;
    }
    let mut order: Vec<usize> = (0..=max_id).filter(|&c| sizes[c] > 0).collect();
    order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]).then(a.cmp(&b)));
    let n_found = order.len();
    if n_found <= v {
        // Just compact the ids.
        let mut remap = vec![0usize; max_id + 1];
        for (new, &old) in order.iter().enumerate() {
            remap[old] = new;
        }
        return (assignments.iter().map(|&a| remap[a]).collect(), n_found);
    }
    // Keep the v-1 largest; merge the tail into slot v-1.
    let mut remap = vec![v - 1; max_id + 1];
    for (new, &old) in order.iter().take(v - 1).enumerate() {
        remap[old] = new;
    }
    (assignments.iter().map(|&a| remap[a]).collect(), v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::synth::{make_classification, ClassificationSpec};

    #[test]
    fn gen_groups_outputs_a_partition() {
        let clusters = vec![0, 0, 1, 1, 2, 2, 0, 1, 2];
        let classes = vec![0, 1, 0, 1, 0, 1, 2, 2, 2];
        let groups = gen_groups(&clusters, &classes, 3, 3);
        assert_eq!(groups.len(), 9);
        assert!(groups.iter().all(|&g| g < 3));
    }

    #[test]
    fn pure_clusters_map_to_their_own_group() {
        // cluster j holds exactly class j: stage 1 claims everything.
        let clusters = vec![0, 0, 1, 1, 2, 2];
        let classes = vec![0, 0, 1, 1, 2, 2];
        let groups = gen_groups(&clusters, &classes, 3, 3);
        assert_eq!(groups, clusters);
    }

    #[test]
    fn minority_class_follows_its_concentration() {
        // Class 1 is never top-1 of cluster 1 but is concentrated in
        // cluster 0; its cluster-1 stragglers must move to group 0.
        // cluster 0: class0 x1, class1 x3 -> top-1 = class1
        // cluster 1: class0 x5, class1 x1 -> top-1 = class0
        let clusters = vec![0, 0, 0, 0, 1, 1, 1, 1, 1, 1];
        let classes = vec![0, 1, 1, 1, 0, 0, 0, 0, 0, 1];
        let groups = gen_groups(&clusters, &classes, 2, 2);
        // top_k = ceil(2/2) = 1; instance 9 (cluster1,class1) is unclaimed and
        // class 1 is most concentrated in cluster 0 -> group 0.
        assert_eq!(groups[9], 0);
        // instance 0 (cluster0,class0) unclaimed; class 0 concentrated in
        // cluster 1 -> group 1.
        assert_eq!(groups[0], 1);
        // claimed instances stay with their cluster.
        assert_eq!(groups[1], 0);
        assert_eq!(groups[4], 1);
    }

    #[test]
    fn single_group_puts_everything_together() {
        let groups = gen_groups(&[0, 0, 0], &[0, 1, 2], 1, 3);
        assert!(groups.iter().all(|&g| g == 0));
    }

    #[test]
    fn more_classes_than_clusters_uses_bigger_top_k() {
        // u=4, v=2 -> top_k = 2: each cluster claims its two biggest classes.
        let clusters = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let classes = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let groups = gen_groups(&clusters, &classes, 2, 4);
        assert_eq!(groups, clusters, "all instances claimed in stage 1");
    }

    #[test]
    fn build_grouping_is_a_partition_with_v_groups() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 400,
                n_features: 6,
                n_informative: 6,
                n_classes: 2,
                n_blobs: 3,
                ..Default::default()
            },
            1,
        );
        let g = build_grouping(
            &data,
            &GroupingConfig {
                v: 3,
                ..Default::default()
            },
        );
        assert_eq!(g.group_of.len(), 400);
        assert_eq!(g.n_groups, 3);
        let sizes = g.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 400);
        assert!(sizes.iter().all(|&s| s > 0), "empty group: {sizes:?}");
    }

    #[test]
    fn grouping_reflects_feature_structure() {
        // With pure well-separated blobs and v = true blob count, groups
        // should align with blobs (each group dominated by one blob's
        // instances → group sizes ≈ blob sizes).
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 300,
                n_features: 4,
                n_informative: 4,
                n_classes: 2,
                n_blobs: 2,
                label_purity: 1.0,
                label_noise: 0.0,
                blob_spread: 0.15,
                ..Default::default()
            },
            2,
        );
        let g = build_grouping(
            &data,
            &GroupingConfig {
                v: 2,
                ..Default::default()
            },
        );
        let sizes = g.sizes();
        // blobs are balanced; groups should be too (within 25%)
        let (a, b) = (sizes[0] as f64, sizes[1] as f64);
        assert!((a / (a + b) - 0.5).abs() < 0.25, "sizes {sizes:?}");
    }

    #[test]
    fn members_and_sizes_agree() {
        let g = Grouping {
            group_of: vec![0, 1, 0, 2, 1],
            n_groups: 3,
            label_category: vec![0; 5],
            n_label_categories: 1,
        };
        let members = g.members();
        assert_eq!(members[0], vec![0, 2]);
        assert_eq!(members[1], vec![1, 4]);
        assert_eq!(members[2], vec![3]);
        assert_eq!(g.sizes(), vec![2, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        gen_groups(&[0, 1], &[0], 2, 2);
    }

    #[test]
    fn cap_clusters_merges_the_tail() {
        // 4 clusters of sizes 5, 3, 2, 1 capped at 2: the largest keeps its
        // identity, the remaining three merge.
        let assignments = vec![0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 3];
        let (capped, v) = cap_clusters(&assignments, 2);
        assert_eq!(v, 2);
        assert!(capped.iter().all(|&c| c < 2));
        assert_eq!(capped[..5], [0, 0, 0, 0, 0]);
        assert!(capped[5..].iter().all(|&c| c == 1));
    }

    #[test]
    fn cap_clusters_compacts_sparse_ids() {
        let (capped, v) = cap_clusters(&[7, 7, 3, 3, 3], 5);
        assert_eq!(v, 2);
        assert_eq!(capped, vec![1, 1, 0, 0, 0]); // 3 is larger -> id 0
    }

    #[test]
    fn mean_shift_grouping_runs() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 200,
                n_features: 4,
                n_informative: 4,
                n_blobs: 2,
                label_purity: 1.0,
                label_noise: 0.0,
                blob_spread: 0.2,
                ..Default::default()
            },
            4,
        );
        let g = build_grouping(
            &data,
            &GroupingConfig {
                v: 3,
                algo: ClusterAlgo::MeanShift { quantile: 0.3 },
                ..Default::default()
            },
        );
        assert_eq!(g.group_of.len(), 200);
        assert!(g.n_groups <= 3 && g.n_groups >= 1);
        assert!(g.group_of.iter().all(|&x| x < g.n_groups));
    }

    #[test]
    fn affinity_grouping_runs_with_subsampling() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 300,
                n_features: 4,
                n_informative: 4,
                n_blobs: 2,
                blob_spread: 0.2,
                ..Default::default()
            },
            5,
        );
        let g = build_grouping(
            &data,
            &GroupingConfig {
                v: 2,
                algo: ClusterAlgo::AffinityPropagation,
                cluster_sample_cap: 100, // force the subsample + 1-NN path
                ..Default::default()
            },
        );
        assert_eq!(g.group_of.len(), 300);
        assert!(g.n_groups <= 2);
        assert!(g.group_of.iter().all(|&x| x < g.n_groups));
    }

    #[test]
    fn regression_labels_are_binned_for_grouping() {
        use hpo_data::synth::{make_regression, RegressionSpec};
        let data = make_regression(
            &RegressionSpec {
                n_instances: 200,
                ..Default::default()
            },
            3,
        );
        let g = build_grouping(
            &data,
            &GroupingConfig {
                v: 2,
                regression_bins: 4,
                ..Default::default()
            },
        );
        assert_eq!(g.n_label_categories, 4);
        assert_eq!(g.group_of.len(), 200);
    }
}
