//! Property tests for grouping and fold construction.

use hpo_data::rng::rng_from_seed;
use hpo_sampling::folds::{gen_folds, GenFoldsConfig};
use hpo_sampling::groups::{cap_clusters, gen_groups, Grouping};
use hpo_sampling::strategy::FoldStrategy;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Stage-1 claims of Operation 1 are stable: instances with the same
    /// (cluster, class) always land in the same group.
    #[test]
    fn gen_groups_is_a_function_of_cluster_and_class(
        pairs in proptest::collection::vec((0usize..3, 0usize..4), 2..120)
    ) {
        let clusters: Vec<usize> = pairs.iter().map(|&(c, _)| c).collect();
        let classes: Vec<usize> = pairs.iter().map(|&(_, y)| y).collect();
        let groups = gen_groups(&clusters, &classes, 3, 4);
        let mut seen: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for i in 0..pairs.len() {
            let key = (clusters[i], classes[i]);
            if let Some(&g) = seen.get(&key) {
                prop_assert_eq!(g, groups[i], "same (cluster,class), different group");
            } else {
                seen.insert(key, groups[i]);
            }
        }
    }

    /// cap_clusters preserves co-membership of same-cluster points and
    /// never exceeds the cap.
    #[test]
    fn cap_clusters_properties(
        assignments in proptest::collection::vec(0usize..10, 1..100),
        v in 1usize..6,
    ) {
        let (capped, used) = cap_clusters(&assignments, v);
        prop_assert_eq!(capped.len(), assignments.len());
        prop_assert!(used <= v);
        prop_assert!(capped.iter().all(|&c| c < used));
        // same original cluster -> same capped cluster
        for i in 0..assignments.len() {
            for j in (i + 1)..assignments.len() {
                if assignments[i] == assignments[j] {
                    prop_assert_eq!(capped[i], capped[j]);
                }
            }
        }
    }

    /// Every fold strategy yields disjoint folds filling the budget, over
    /// random group structures and budgets.
    #[test]
    fn strategies_fill_budgets(
        group_of in proptest::collection::vec(0usize..2, 40..120),
        budget_frac in 0.2f64..1.0,
        seed in 0u64..200,
    ) {
        let n = group_of.len();
        let grouping = Grouping {
            group_of: group_of.clone(),
            n_groups: 2,
            label_category: group_of.clone(),
            n_label_categories: 2,
        };
        let labels = grouping.label_category.clone();
        let budget = ((n as f64) * budget_frac) as usize;
        prop_assume!(budget >= 10);
        for strategy in [
            FoldStrategy::Random { k: 5 },
            FoldStrategy::StratifiedLabel { k: 5 },
            FoldStrategy::StratifiedGroup { k: 5 },
            FoldStrategy::GeneralSpecial(GenFoldsConfig::default()),
        ] {
            let mut rng = rng_from_seed(seed);
            let folds = strategy.build(n, &labels, 2, Some(&grouping), budget, &mut rng);
            let all: Vec<usize> = folds.iter().flatten().copied().collect();
            let set: HashSet<usize> = all.iter().copied().collect();
            prop_assert_eq!(all.len(), set.len(), "{:?} folds overlap", strategy);
            prop_assert_eq!(all.len(), budget, "{:?} misses the budget", strategy);
            prop_assert!(all.iter().all(|&i| i < n));
        }
    }

    /// The special folds' own-group share approaches the configured
    /// fraction whenever the group is large enough to supply it.
    #[test]
    fn special_fold_bias_is_respected(seed in 0u64..300) {
        // Two equal groups of 100; budget 100 -> folds of 20; own share 16.
        let group_of: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let grouping = Grouping {
            group_of,
            n_groups: 2,
            label_category: vec![0; 200],
            n_label_categories: 1,
        };
        let cfg = GenFoldsConfig { k_gen: 3, k_spe: 2, special_own_frac: 0.8 };
        let mut rng = rng_from_seed(seed);
        let folds = gen_folds(&grouping, 100, &cfg, &mut rng);
        for (i, fold) in folds[cfg.k_gen..].iter().enumerate() {
            let own = i % 2;
            let own_count = fold
                .iter()
                .filter(|&&x| grouping.group_of[x] == own)
                .count();
            prop_assert_eq!(own_count, 16, "fold {} has own share {}", i, own_count);
        }
    }
}
