//! Property tests pinning the kernel numerics policy (DESIGN.md §5.12) for
//! this crate's hot-loop kernels: activation slice kernels and optimizer
//! steps must be **bit-identical** (0 ULP) to their scalar reference loops;
//! the laned loss sums must stay within the **documented ULP bound** of the
//! sequential references.
//!
//! Inputs come from a seeded LCG (no `rand` dependency) sweeping lengths
//! around the 4-lane boundary so both the lane body and the scalar tail are
//! exercised.

use hpo_data::simd::ulp_distance;
use hpo_data::Matrix;
use hpo_models::activation::Activation;
use hpo_models::loss::OutputLoss;
use hpo_models::optimizer::{Adam, Sgd};

/// Deterministic values in roughly [-1, 1).
fn lcg_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

const ALL_ACTIVATIONS: [Activation; 4] = [
    Activation::Logistic,
    Activation::Tanh,
    Activation::Relu,
    Activation::Identity,
];

#[test]
fn apply_slice_is_zero_ulp_against_scalar() {
    for act in ALL_ACTIVATIONS {
        for n in [0, 1, 3, 4, 5, 8, 17, 64, 129] {
            let xs = lcg_vec(n, 0xA0 + n as u64);
            let mut got = xs.clone();
            act.apply_slice(&mut got);
            for (i, (&g, &x)) in got.iter().zip(&xs).enumerate() {
                assert_eq!(
                    ulp_distance(g, act.apply(x)),
                    0,
                    "{act:?} apply_slice diverged at {i}/{n}"
                );
            }
        }
    }
}

#[test]
fn derivative_mul_slice_is_zero_ulp_against_scalar() {
    for act in ALL_ACTIVATIONS {
        for n in [0, 1, 3, 4, 5, 8, 17, 64, 129] {
            // Use activated values as the derivative input, like backprop.
            let mut outputs = lcg_vec(n, 0xB0 + n as u64);
            act.apply_slice(&mut outputs);
            let deltas = lcg_vec(n, 0xC0 + n as u64);
            let mut got = deltas.clone();
            act.derivative_mul_slice(&mut got, &outputs);
            for i in 0..n {
                let want = deltas[i] * act.derivative_from_output(outputs[i]);
                assert_eq!(
                    ulp_distance(got[i], want),
                    0,
                    "{act:?} derivative_mul_slice diverged at {i}/{n}"
                );
            }
        }
    }
}

#[test]
fn relu_backprop_kernel_propagates_nan_like_scalar() {
    // The relu derivative is a multiply by 1.0/0.0, not a select: a NaN
    // delta at an inactive unit must zero out exactly as the scalar loop
    // does (NaN * 0.0 = NaN in both).
    let outputs = [1.0, 0.0, 2.0, 0.0, 1.5];
    let mut deltas = [f64::NAN, f64::NAN, 1.0, 2.0, f64::INFINITY];
    let mut want = deltas;
    for (d, &a) in want.iter_mut().zip(&outputs) {
        *d *= Activation::Relu.derivative_from_output(a);
    }
    Activation::Relu.derivative_mul_slice(&mut deltas, &outputs);
    for (g, w) in deltas.iter().zip(&want) {
        assert_eq!(g.to_bits(), w.to_bits());
    }
}

#[test]
fn loss_stays_within_documented_ulp_bound_of_reference() {
    for (rows, cols, seed) in [(1, 1, 1u64), (7, 3, 2), (16, 4, 3), (33, 10, 4), (64, 7, 5)] {
        let n = rows * cols;
        // Positive "probabilities" for cross-entropy; reuse as predictions
        // for squared error.
        let p_data: Vec<f64> = lcg_vec(n, seed).iter().map(|v| v.abs().max(1e-9)).collect();
        let t_data: Vec<f64> = (0..n)
            .map(|i| {
                if i % cols == (i / cols) % cols {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let p = Matrix::from_vec(rows, cols, p_data).unwrap();
        let t = Matrix::from_vec(rows, cols, t_data).unwrap();
        for kind in [OutputLoss::SoftmaxCrossEntropy, OutputLoss::SquaredError] {
            let fast = kind.loss(&p, &t);
            let reference = kind.loss_reference(&p, &t);
            // Uniformly-signed terms: reassociation error is bounded by
            // n·ε relative, i.e. well under n ULPs (DESIGN.md §5.12).
            assert!(
                ulp_distance(fast, reference) <= n as u64,
                "{kind:?} {rows}x{cols}: {fast} vs {reference} ({} ULPs)",
                ulp_distance(fast, reference)
            );
        }
    }
}

#[test]
fn sgd_step_is_bit_identical_to_scalar_update() {
    for n in [1, 4, 7, 32, 67] {
        let grad = lcg_vec(n, 0xD0 + n as u64);
        let mut params = lcg_vec(n, 0xE0 + n as u64);
        let mut reference_params = params.clone();
        let mut reference_velocity = vec![0.0; n];
        let mut sgd = Sgd::new(n, 0.9);
        for step in 0..5 {
            let lr = 0.05 / (step + 1) as f64;
            sgd.step(&mut params, &grad, lr);
            for ((p, &g), v) in reference_params
                .iter_mut()
                .zip(&grad)
                .zip(&mut reference_velocity)
            {
                *v = 0.9 * *v - lr * g;
                *p += *v;
            }
        }
        for i in 0..n {
            assert_eq!(
                params[i].to_bits(),
                reference_params[i].to_bits(),
                "sgd diverged at {i}/{n}"
            );
        }
        for i in 0..n {
            assert_eq!(sgd.velocity()[i].to_bits(), reference_velocity[i].to_bits());
        }
    }
}

#[test]
fn adam_step_is_bit_identical_to_scalar_update() {
    let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);
    for n in [1, 4, 7, 32, 67] {
        let grad = lcg_vec(n, 0xF0 + n as u64);
        let mut params = lcg_vec(n, 0x100 + n as u64);
        let mut reference_params = params.clone();
        let (mut rm, mut rv) = (vec![0.0; n], vec![0.0; n]);
        let mut adam = Adam::new(n);
        for step in 1..=5u64 {
            let lr = 0.01;
            adam.step(&mut params, &grad, lr);
            let bc1 = 1.0 - beta1_pow(beta1, step);
            let bc2 = 1.0 - beta1_pow(beta2, step);
            for (((p, &g), m), v) in reference_params
                .iter_mut()
                .zip(&grad)
                .zip(&mut rm)
                .zip(&mut rv)
            {
                *m = beta1 * *m + (1.0 - beta1) * g;
                *v = beta2 * *v + (1.0 - beta2) * g * g;
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                *p -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
        for i in 0..n {
            assert_eq!(
                params[i].to_bits(),
                reference_params[i].to_bits(),
                "adam diverged at {i}/{n}"
            );
        }
    }
}

/// `powi`-equivalent used by Adam's bias correction (kept identical to the
/// implementation: `f64::powi` with an `i32` exponent).
fn beta1_pow(beta: f64, t: u64) -> f64 {
    beta.powi(t as i32)
}
