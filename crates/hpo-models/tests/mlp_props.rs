//! Property tests for the MLP: gradients, determinism, solver agreement.

use hpo_data::matrix::Matrix;
use hpo_models::activation::Activation;
use hpo_models::loss::{one_hot, OutputLoss};
use hpo_models::mlp::network::Network;
use proptest::prelude::*;

fn batch(n: usize, d: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f64..2.0, n * d)
        .prop_map(move |v| Matrix::from_vec(n, d, v).expect("shape matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Backprop matches central finite differences on random nets and
    /// batches, for every activation and both output losses.
    #[test]
    fn gradients_match_finite_differences(
        x in batch(4, 3),
        labels in proptest::collection::vec(0usize..2, 4),
        act_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let act = [Activation::Logistic, Activation::Tanh, Activation::Relu][act_idx];
        let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        let t = one_hot(&y, 2);
        let mut net = Network::new(vec![3, 5, 2], act, OutputLoss::SoftmaxCrossEntropy, seed);
        let (_, grad) = net.loss_grad(&x, &t, 0.01);
        let flat = net.params_flat();
        let h = 1e-6;
        // Spot-check a third of the parameters.
        for i in (0..flat.len()).step_by(3) {
            let mut plus = flat.clone();
            plus[i] += h;
            net.set_params_flat(&plus);
            let (lp, _) = net.loss_grad(&x, &t, 0.01);
            let mut minus = flat.clone();
            minus[i] -= h;
            net.set_params_flat(&minus);
            let (lm, _) = net.loss_grad(&x, &t, 0.01);
            net.set_params_flat(&flat);
            let fd = (lp - lm) / (2.0 * h);
            // ReLU kinks can spoil individual finite differences; allow a
            // loose tolerance there and a tight one elsewhere.
            let tol = if act == Activation::Relu { 2e-3 } else { 2e-5 };
            prop_assert!(
                (fd - grad[i]).abs() < tol,
                "param {}: fd={} bp={} act={:?}", i, fd, grad[i], act
            );
        }
    }

    /// Flat parameter round-trips are exact for arbitrary shapes.
    #[test]
    fn params_roundtrip(hidden in 1usize..8, seed in 0u64..1000) {
        let mut net = Network::new(
            vec![4, hidden, 3],
            Activation::Tanh,
            OutputLoss::SoftmaxCrossEntropy,
            seed,
        );
        let flat = net.params_flat();
        prop_assert_eq!(flat.len(), net.n_params());
        net.set_params_flat(&flat);
        prop_assert_eq!(net.params_flat(), flat);
    }

    /// The loss is non-negative and finite for any input batch.
    #[test]
    fn loss_is_finite_and_nonnegative(
        x in batch(5, 3),
        labels in proptest::collection::vec(0usize..3, 5),
        seed in 0u64..1000,
    ) {
        let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
        let t = one_hot(&y, 3);
        let net = Network::new(vec![3, 4, 3], Activation::Relu, OutputLoss::SoftmaxCrossEntropy, seed);
        let (loss, grad) = net.loss_grad(&x, &t, 1e-4);
        prop_assert!(loss.is_finite() && loss >= 0.0, "loss {}", loss);
        prop_assert!(grad.iter().all(|g| g.is_finite()));
    }

    /// Probabilities sum to one for any input.
    #[test]
    fn prediction_rows_are_distributions(x in batch(6, 4), seed in 0u64..1000) {
        let net = Network::new(vec![4, 6, 3], Activation::Logistic, OutputLoss::SoftmaxCrossEntropy, seed);
        let p = net.predict_raw(&x);
        for row in p.iter_rows() {
            let s: f64 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9, "row sums to {}", s);
            prop_assert!(row.iter().all(|&v| v >= 0.0));
        }
    }
}
