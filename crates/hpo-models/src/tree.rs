//! CART-style decision tree classifier.
//!
//! A depth-limited binary tree split on Gini impurity. Serves two roles:
//! another fast baseline next to the MLP the paper tunes, and a
//! qualitatively different model family for exercising the HPO evaluator in
//! tests (trees are deterministic and cheap, so tree-based assertions don't
//! inherit MLP training noise).

use crate::estimator::{Classifier, Estimator, TrainReport};
use hpo_data::dataset::{Dataset, Task};
use hpo_data::error::DataError;
use hpo_data::matrix::Matrix;

/// Hyperparameters of the tree.
#[derive(Clone, Debug)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum impurity decrease required to accept a split.
    pub min_impurity_decrease: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_samples_split: 2,
            min_impurity_decrease: 1e-7,
        }
    }
}

/// A fitted tree node.
#[derive(Clone, Debug)]
enum Node {
    Leaf {
        /// Class probabilities at the leaf.
        proba: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// CART decision tree classifier (Gini impurity, axis-aligned splits).
#[derive(Clone, Debug)]
pub struct DecisionTreeClassifier {
    /// Hyperparameters.
    pub params: TreeParams,
    root: Option<Node>,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// Creates an unfitted tree with the given hyperparameters.
    pub fn new(params: TreeParams) -> Self {
        DecisionTreeClassifier {
            params,
            root: None,
            n_classes: 0,
        }
    }

    /// Number of leaves of the fitted tree (diagnostics).
    pub fn n_leaves(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    fn build(&self, x: &Matrix, y: &[usize], indices: &[usize], depth: usize) -> Node {
        let counts = class_counts(y, indices, self.n_classes);
        let total = indices.len() as f64;
        let node_gini = gini(&counts, total);

        let make_leaf = || Node::Leaf {
            proba: counts.iter().map(|&c| c as f64 / total).collect(),
        };
        if depth >= self.params.max_depth
            || indices.len() < self.params.min_samples_split
            || node_gini == 0.0
        {
            return make_leaf();
        }

        // Best axis-aligned split by exhaustive scan per feature.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity decrease)
        for f in 0..x.cols() {
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| {
                x[(a, f)]
                    .partial_cmp(&x[(b, f)])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_counts = vec![0usize; self.n_classes];
            for cut in 1..order.len() {
                left_counts[y[order[cut - 1]]] += 1;
                let (prev, cur) = (x[(order[cut - 1], f)], x[(order[cut], f)]);
                if prev == cur {
                    continue; // can't split between equal values
                }
                let right_counts: Vec<usize> = counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(&t, &l)| t - l)
                    .collect();
                let nl = cut as f64;
                let nr = total - nl;
                let weighted =
                    (nl / total) * gini(&left_counts, nl) + (nr / total) * gini(&right_counts, nr);
                let decrease = node_gini - weighted;
                if best.is_none_or(|(_, _, d)| decrease > d) {
                    best = Some((f, 0.5 * (prev + cur), decrease));
                }
            }
        }

        match best {
            Some((feature, threshold, decrease))
                if decrease >= self.params.min_impurity_decrease =>
            {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| x[(i, feature)] <= threshold);
                if left_idx.is_empty() || right_idx.is_empty() {
                    return make_leaf();
                }
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.build(x, y, &left_idx, depth + 1)),
                    right: Box::new(self.build(x, y, &right_idx, depth + 1)),
                }
            }
            _ => make_leaf(),
        }
    }
}

fn class_counts(y: &[usize], indices: &[usize], k: usize) -> Vec<usize> {
    let mut counts = vec![0usize; k];
    for &i in indices {
        counts[y[i]] += 1;
    }
    counts
}

/// Gini impurity `1 − Σ p²`.
fn gini(counts: &[usize], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total;
            p * p
        })
        .sum::<f64>()
}

impl Estimator for DecisionTreeClassifier {
    fn fit(&mut self, data: &Dataset) -> Result<TrainReport, DataError> {
        let k = match data.task() {
            Task::Regression => {
                return Err(DataError::invalid(
                    "data",
                    "DecisionTreeClassifier requires a classification dataset",
                ))
            }
            task => task.n_classes().expect("classification has classes"),
        };
        if data.n_instances() == 0 {
            return Err(DataError::invalid("data", "empty dataset"));
        }
        self.n_classes = k;
        let y: Vec<usize> = data.y().iter().map(|&l| l as usize).collect();
        let indices: Vec<usize> = (0..data.n_instances()).collect();
        self.root = Some(self.build(data.x(), &y, &indices, 0));
        // Cost model: exhaustive split scan ≈ n log n per feature per level.
        let n = data.n_instances() as u64;
        let cost =
            n.max(1).ilog2() as u64 * n * data.n_features() as u64 * self.params.max_depth as u64;
        Ok(TrainReport {
            epochs: 1,
            final_loss: 0.0,
            cost_units: cost,
            stopped_early: false,
            diverged: false,
        })
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let p = self.predict_proba(x);
        (0..p.rows())
            .map(|r| {
                let row = p.row(r);
                let mut best = 0;
                for (c, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = c;
                    }
                }
                best as f64
            })
            .collect()
    }
}

impl Classifier for DecisionTreeClassifier {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let root = self
            .root
            .as_ref()
            .expect("DecisionTreeClassifier::predict called before fit");
        let mut proba = Matrix::zeros(x.rows(), self.n_classes);
        for (r, row) in x.iter_rows().enumerate() {
            let mut node = root;
            loop {
                match node {
                    Node::Leaf { proba: p } => {
                        proba.row_mut(r).copy_from_slice(p);
                        break;
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        node = if row[*feature] <= *threshold {
                            left
                        } else {
                            right
                        };
                    }
                }
            }
        }
        proba
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::synth::{make_classification, ClassificationSpec};

    fn acc(t: &[f64], p: &[f64]) -> f64 {
        t.iter().zip(p).filter(|(a, b)| a == b).count() as f64 / t.len() as f64
    }

    #[test]
    fn separates_axis_aligned_data_perfectly() {
        // y = x0 > 0.5
        let x = Matrix::from_rows(&[
            &[0.1, 9.0],
            &[0.2, -3.0],
            &[0.3, 5.0],
            &[0.7, 1.0],
            &[0.8, -2.0],
            &[0.9, 4.0],
        ]);
        let d = Dataset::new(
            x,
            vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0],
            Task::BinaryClassification,
        )
        .unwrap();
        let mut tree = DecisionTreeClassifier::new(TreeParams::default());
        tree.fit(&d).unwrap();
        assert_eq!(acc(d.y(), &tree.predict(d.x())), 1.0);
        assert_eq!(tree.n_leaves(), 2, "one split suffices");
    }

    #[test]
    fn depth_zero_is_a_majority_leaf() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let d = Dataset::new(x, vec![1.0, 1.0, 0.0], Task::BinaryClassification).unwrap();
        let mut tree = DecisionTreeClassifier::new(TreeParams {
            max_depth: 0,
            ..Default::default()
        });
        tree.fit(&d).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(d.x()), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn learns_blobs_well() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 300,
                n_features: 5,
                n_informative: 5,
                n_classes: 3,
                n_blobs: 3,
                label_purity: 1.0,
                label_noise: 0.0,
                blob_spread: 0.25,
                ..Default::default()
            },
            1,
        );
        let mut tree = DecisionTreeClassifier::new(TreeParams::default());
        tree.fit(&data).unwrap();
        let a = acc(data.y(), &tree.predict(data.x()));
        assert!(a > 0.95, "train accuracy {a}");
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 80,
                label_noise: 0.2,
                ..Default::default()
            },
            2,
        );
        let mut tree = DecisionTreeClassifier::new(TreeParams {
            max_depth: 3,
            ..Default::default()
        });
        tree.fit(&data).unwrap();
        let p = tree.predict_proba(data.x());
        for row in p.iter_rows() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn min_impurity_decrease_prunes_noise_splits() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 120,
                label_noise: 0.3,
                ..Default::default()
            },
            3,
        );
        let mut loose = DecisionTreeClassifier::new(TreeParams {
            max_depth: 10,
            min_impurity_decrease: 0.0,
            ..Default::default()
        });
        loose.fit(&data).unwrap();
        let mut strict = DecisionTreeClassifier::new(TreeParams {
            max_depth: 10,
            min_impurity_decrease: 0.05,
            ..Default::default()
        });
        strict.fit(&data).unwrap();
        assert!(
            strict.n_leaves() <= loose.n_leaves(),
            "{} vs {}",
            strict.n_leaves(),
            loose.n_leaves()
        );
    }

    #[test]
    fn rejects_regression_and_empty() {
        let x = Matrix::zeros(3, 2);
        let reg = Dataset::new(x, vec![0.5; 3], Task::Regression).unwrap();
        assert!(DecisionTreeClassifier::new(TreeParams::default())
            .fit(&reg)
            .is_err());
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = Matrix::full(10, 3, 1.0);
        let y = (0..10).map(|i| (i % 2) as f64).collect();
        let d = Dataset::new(x, y, Task::BinaryClassification).unwrap();
        let mut tree = DecisionTreeClassifier::new(TreeParams::default());
        tree.fit(&d).unwrap();
        assert_eq!(tree.n_leaves(), 1, "no valid split exists");
    }
}
