//! Estimator traits and training-cost accounting.
//!
//! The HPO evaluator is generic over anything that can `fit` on a dataset
//! and `predict` labels. Training also returns a [`TrainReport`] with a
//! deterministic *cost* counter (≈ multiply-accumulate operations), which the
//! benchmark harness uses alongside wall-clock time so the paper's relative
//! search-time comparisons are machine-independent (DESIGN.md §1).

use hpo_data::dataset::Dataset;
use hpo_data::error::DataError;
use hpo_data::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Summary of a completed training run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Epochs (or L-BFGS iterations) actually run.
    pub epochs: usize,
    /// Final training loss.
    pub final_loss: f64,
    /// Deterministic training cost in multiply-accumulate units.
    pub cost_units: u64,
    /// Whether training stopped early (convergence or early stopping).
    pub stopped_early: bool,
    /// Whether training diverged (non-finite loss). The model's weights are
    /// the last finite iterate, but its predictions should not be trusted —
    /// the evaluator scores diverged fits as failed folds.
    #[serde(default)]
    pub diverged: bool,
}

/// Anything that can be trained on a dataset and produce label predictions.
pub trait Estimator {
    /// Trains the model on `data`, replacing any previous fit.
    ///
    /// # Errors
    /// Returns [`DataError`] when `data` is incompatible (e.g. wrong task or
    /// empty input).
    fn fit(&mut self, data: &Dataset) -> Result<TrainReport, DataError>;

    /// Predicts a label per row of `x`.
    ///
    /// # Panics
    /// May panic when called before `fit` or with the wrong feature count.
    fn predict(&self, x: &Matrix) -> Vec<f64>;
}

/// Classification-specific extensions.
pub trait Classifier: Estimator {
    /// Class probabilities, one row per instance, one column per class.
    fn predict_proba(&self, x: &Matrix) -> Matrix;

    /// Number of classes the model was fit for.
    fn n_classes(&self) -> usize;
}

/// Regression marker trait (predictions are real-valued targets).
pub trait Regressor: Estimator {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_report_default_is_zeroed() {
        let r = TrainReport::default();
        assert_eq!(r.epochs, 0);
        assert_eq!(r.cost_units, 0);
        assert!(!r.stopped_early);
    }
}
