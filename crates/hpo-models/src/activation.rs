//! Hidden-layer activation functions (paper Table III: logistic/tanh/relu).
//!
//! Besides the per-value [`Activation::apply`]/[`Activation::derivative_from_output`],
//! this module provides the slice kernels the MLP hot loops actually call:
//! [`Activation::apply_slice`] and [`Activation::derivative_mul_slice`]. Both
//! are elementwise and order-preserving, so they are bit-identical to the
//! scalar loops with the `simd` feature on or off (DESIGN.md §5.12).

use hpo_data::simd::{F64x4, LANES};
use hpo_data::simd_kernel;
use serde::{Deserialize, Serialize};

simd_kernel! {
    /// `x = max(x, 0)` over a slice (relu forward).
    fn relu_slice(xs: &mut [f64]) {
        for v in xs {
            *v = v.max(0.0);
        }
    }
}

simd_kernel! {
    /// `d *= a * (1 - a)` elementwise (logistic backprop).
    fn logistic_derivative_mul(deltas: &mut [f64], outputs: &[f64]) {
        let one = F64x4::splat(1.0);
        let mut dc = deltas.chunks_exact_mut(LANES);
        let mut ac = outputs.chunks_exact(LANES);
        for (d4, a4) in (&mut dc).zip(&mut ac) {
            let a = F64x4::load(a4);
            F64x4::load(d4).mul(a.mul(one.sub(a))).store(d4);
        }
        for (d, &a) in dc.into_remainder().iter_mut().zip(ac.remainder()) {
            *d *= a * (1.0 - a);
        }
    }
}

simd_kernel! {
    /// `d *= 1 - a²` elementwise (tanh backprop).
    fn tanh_derivative_mul(deltas: &mut [f64], outputs: &[f64]) {
        let one = F64x4::splat(1.0);
        let mut dc = deltas.chunks_exact_mut(LANES);
        let mut ac = outputs.chunks_exact(LANES);
        for (d4, a4) in (&mut dc).zip(&mut ac) {
            let a = F64x4::load(a4);
            F64x4::load(d4).mul(one.sub(a.mul(a))).store(d4);
        }
        for (d, &a) in dc.into_remainder().iter_mut().zip(ac.remainder()) {
            *d *= 1.0 - a * a;
        }
    }
}

simd_kernel! {
    /// `d *= (a > 0) as f64` elementwise (relu backprop).
    ///
    /// Kept as a multiply by 1.0/0.0 — not a select — so non-finite deltas
    /// propagate exactly like the scalar derivative loop.
    fn relu_derivative_mul(deltas: &mut [f64], outputs: &[f64]) {
        for (d, &a) in deltas.iter_mut().zip(outputs) {
            *d *= if a > 0.0 { 1.0 } else { 0.0 };
        }
    }
}

/// Hidden-layer activation function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Sigmoid `1/(1+e^-x)`.
    Logistic,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Identity (used for linear probes in tests).
    Identity,
}

impl Activation {
    /// All activations in the paper's search space.
    pub const SEARCH_SPACE: [Activation; 3] =
        [Activation::Logistic, Activation::Tanh, Activation::Relu];

    /// Applies the activation to one value.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Logistic => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *activated* value `a = f(x)`,
    /// which is what backprop has on hand.
    #[inline]
    pub fn derivative_from_output(&self, a: f64) -> f64 {
        match self {
            Activation::Logistic => a * (1.0 - a),
            Activation::Tanh => 1.0 - a * a,
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to every element of `xs` in place.
    ///
    /// Bit-identical to calling [`Activation::apply`] per element: relu (and
    /// identity) vectorize, logistic/tanh stay scalar because their libm
    /// calls dominate anyway.
    pub fn apply_slice(&self, xs: &mut [f64]) {
        match self {
            Activation::Logistic => {
                for v in xs {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
            Activation::Tanh => {
                for v in xs {
                    *v = v.tanh();
                }
            }
            Activation::Relu => relu_slice(xs),
            Activation::Identity => {}
        }
    }

    /// Fused backprop inner loop:
    /// `deltas[i] *= derivative_from_output(outputs[i])`.
    ///
    /// Elementwise and order-preserving — bit-identical to the scalar loop
    /// over [`Activation::derivative_from_output`] with `simd` on or off.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn derivative_mul_slice(&self, deltas: &mut [f64], outputs: &[f64]) {
        assert_eq!(
            deltas.len(),
            outputs.len(),
            "derivative_mul_slice length mismatch"
        );
        match self {
            Activation::Logistic => logistic_derivative_mul(deltas, outputs),
            Activation::Tanh => tanh_derivative_mul(deltas, outputs),
            Activation::Relu => relu_derivative_mul(deltas, outputs),
            Activation::Identity => {}
        }
    }

    /// The scikit-learn parameter string for this activation.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Logistic => "logistic",
            Activation::Tanh => "tanh",
            Activation::Relu => "relu",
            Activation::Identity => "identity",
        }
    }

    /// Parses a scikit-learn-style activation name.
    pub fn from_name(name: &str) -> Option<Activation> {
        match name {
            "logistic" => Some(Activation::Logistic),
            "tanh" => Some(Activation::Tanh),
            "relu" => Some(Activation::Relu),
            "identity" => Some(Activation::Identity),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_values() {
        let a = Activation::Logistic;
        assert!((a.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(a.apply(10.0) > 0.9999);
        assert!(a.apply(-10.0) < 0.0001);
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = Activation::Relu;
        assert_eq!(a.apply(-3.0), 0.0);
        assert_eq!(a.apply(2.5), 2.5);
        assert_eq!(a.derivative_from_output(0.0), 0.0);
        assert_eq!(a.derivative_from_output(1.0), 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in [Activation::Logistic, Activation::Tanh, Activation::Identity] {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let an = act.derivative_from_output(act.apply(x));
                assert!(
                    (fd - an).abs() < 1e-5,
                    "{act:?} derivative mismatch at {x}: fd={fd} an={an}"
                );
            }
        }
    }

    #[test]
    fn slice_kernels_match_scalar_bit_for_bit() {
        // 13 elements: exercises both the 4-lane chunks and the tail, with a
        // sign mix so relu takes both branches.
        let xs: Vec<f64> = (0..13).map(|i| (i as f64 - 6.0) * 0.7).collect();
        let ds: Vec<f64> = (0..13).map(|i| (i as f64) * 0.3 - 1.9).collect();
        for act in [
            Activation::Logistic,
            Activation::Tanh,
            Activation::Relu,
            Activation::Identity,
        ] {
            let mut got = xs.clone();
            act.apply_slice(&mut got);
            for (g, &x) in got.iter().zip(&xs) {
                assert_eq!(g.to_bits(), act.apply(x).to_bits(), "{act:?} apply");
            }
            // `got` now holds activated values, the right input for the
            // derivative kernel.
            let mut d = ds.clone();
            act.derivative_mul_slice(&mut d, &got);
            for ((dv, &d0), &a) in d.iter().zip(&ds).zip(&got) {
                let want = d0 * act.derivative_from_output(a);
                assert_eq!(dv.to_bits(), want.to_bits(), "{act:?} derivative");
            }
        }
    }

    #[test]
    fn name_roundtrip() {
        for act in [
            Activation::Logistic,
            Activation::Tanh,
            Activation::Relu,
            Activation::Identity,
        ] {
            assert_eq!(Activation::from_name(act.name()), Some(act));
        }
        assert_eq!(Activation::from_name("swish"), None);
    }
}
