//! Hidden-layer activation functions (paper Table III: logistic/tanh/relu).

use serde::{Deserialize, Serialize};

/// Hidden-layer activation function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Sigmoid `1/(1+e^-x)`.
    Logistic,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Identity (used for linear probes in tests).
    Identity,
}

impl Activation {
    /// All activations in the paper's search space.
    pub const SEARCH_SPACE: [Activation; 3] =
        [Activation::Logistic, Activation::Tanh, Activation::Relu];

    /// Applies the activation to one value.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Logistic => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *activated* value `a = f(x)`,
    /// which is what backprop has on hand.
    #[inline]
    pub fn derivative_from_output(&self, a: f64) -> f64 {
        match self {
            Activation::Logistic => a * (1.0 - a),
            Activation::Tanh => 1.0 - a * a,
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// The scikit-learn parameter string for this activation.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Logistic => "logistic",
            Activation::Tanh => "tanh",
            Activation::Relu => "relu",
            Activation::Identity => "identity",
        }
    }

    /// Parses a scikit-learn-style activation name.
    pub fn from_name(name: &str) -> Option<Activation> {
        match name {
            "logistic" => Some(Activation::Logistic),
            "tanh" => Some(Activation::Tanh),
            "relu" => Some(Activation::Relu),
            "identity" => Some(Activation::Identity),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_values() {
        let a = Activation::Logistic;
        assert!((a.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(a.apply(10.0) > 0.9999);
        assert!(a.apply(-10.0) < 0.0001);
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = Activation::Relu;
        assert_eq!(a.apply(-3.0), 0.0);
        assert_eq!(a.apply(2.5), 2.5);
        assert_eq!(a.derivative_from_output(0.0), 0.0);
        assert_eq!(a.derivative_from_output(1.0), 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in [Activation::Logistic, Activation::Tanh, Activation::Identity] {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let an = act.derivative_from_output(act.apply(x));
                assert!(
                    (fd - an).abs() < 1e-5,
                    "{act:?} derivative mismatch at {x}: fd={fd} an={an}"
                );
            }
        }
    }

    #[test]
    fn name_roundtrip() {
        for act in [
            Activation::Logistic,
            Activation::Tanh,
            Activation::Relu,
            Activation::Identity,
        ] {
            assert_eq!(Activation::from_name(act.name()), Some(act));
        }
        assert_eq!(Activation::from_name("swish"), None);
    }
}
