//! First-order and quasi-Newton optimizers over flat parameter vectors.
//!
//! The network flattens its weights into one `Vec<f64>`; these optimizers
//! are agnostic to the network structure. SGD and Adam consume per-batch
//! gradients; L-BFGS drives full-batch optimization through a closure.

/// Stochastic gradient descent with classical momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Momentum coefficient (paper Table III: 0.7/0.8/0.9).
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates SGD state for `n_params` parameters.
    pub fn new(n_params: usize, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum) || momentum == 0.0 || momentum < 1.0);
        Sgd {
            momentum,
            velocity: vec![0.0; n_params],
        }
    }

    /// Rebuilds SGD from a previously exported velocity buffer, so a warm
    /// restart continues with the same momentum the prior fit ended with.
    pub fn from_velocity(momentum: f64, velocity: Vec<f64>) -> Self {
        Sgd { momentum, velocity }
    }

    /// The momentum buffer, for snapshotting across budget rungs.
    pub fn velocity(&self) -> &[f64] {
        &self.velocity
    }

    /// Applies one update: `v = m·v − lr·g; θ += v`.
    pub fn step(&mut self, params: &mut [f64], grad: &[f64], lr: f64) {
        debug_assert_eq!(params.len(), grad.len());
        debug_assert_eq!(params.len(), self.velocity.len());
        for ((p, &g), v) in params.iter_mut().zip(grad).zip(&mut self.velocity) {
            *v = self.momentum * *v - lr * g;
            *p += *v;
        }
    }
}

/// Adam (Kingma & Ba) with bias correction; scikit-learn's MLP default.
#[derive(Clone, Debug)]
pub struct Adam {
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates Adam state with the standard (β₁, β₂, ε) = (0.9, 0.999, 1e-8).
    pub fn new(n_params: usize) -> Self {
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// Rebuilds Adam from previously exported moment buffers and step count,
    /// so bias correction picks up exactly where the prior fit stopped.
    pub fn from_moments(m: Vec<f64>, v: Vec<f64>, t: u64) -> Self {
        debug_assert_eq!(m.len(), v.len());
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m,
            v,
            t,
        }
    }

    /// The first/second moment buffers and step count, for snapshotting
    /// across budget rungs.
    pub fn moments(&self) -> (&[f64], &[f64], u64) {
        (&self.m, &self.v, self.t)
    }

    /// Applies one bias-corrected update.
    pub fn step(&mut self, params: &mut [f64], grad: &[f64], lr: f64) {
        debug_assert_eq!(params.len(), grad.len());
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, &g), m), v) in params
            .iter_mut()
            .zip(grad)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            *p -= lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// Outcome of an L-BFGS run.
#[derive(Clone, Debug)]
pub struct LbfgsReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Final objective value.
    pub final_loss: f64,
    /// Whether the gradient-norm/progress criterion was met before the
    /// iteration cap.
    pub converged: bool,
    /// Total objective/gradient evaluations (for cost accounting).
    pub evaluations: usize,
}

/// Limited-memory BFGS with Armijo backtracking line search.
///
/// `objective` must return `(loss, gradient)` at the given parameters.
/// `params` is optimized in place. History size `m = 10` matches common
/// practice (and scipy's default used by scikit-learn's `solver='lbfgs'`).
pub fn lbfgs(
    params: &mut [f64],
    max_iters: usize,
    tol: f64,
    mut objective: impl FnMut(&[f64]) -> (f64, Vec<f64>),
) -> LbfgsReport {
    const HISTORY: usize = 10;
    let _n = params.len();
    let mut evals = 0usize;

    let (mut loss, mut grad) = objective(params);
    evals += 1;

    let mut s_hist: Vec<Vec<f64>> = Vec::new();
    let mut y_hist: Vec<Vec<f64>> = Vec::new();
    let mut rho_hist: Vec<f64> = Vec::new();

    let mut converged = false;
    let mut iterations = 0usize;

    for _ in 0..max_iters {
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if gnorm < tol {
            converged = true;
            break;
        }
        iterations += 1;

        // Two-loop recursion to compute direction d = -H·g.
        let mut q = grad.clone();
        let k = s_hist.len();
        let mut alphas = vec![0.0; k];
        for i in (0..k).rev() {
            let a = rho_hist[i] * dot(&s_hist[i], &q);
            alphas[i] = a;
            for (qv, &yv) in q.iter_mut().zip(&y_hist[i]) {
                *qv -= a * yv;
            }
        }
        // Initial Hessian scaling γ = s·y / y·y from the latest pair.
        if let (Some(s), Some(y)) = (s_hist.last(), y_hist.last()) {
            let sy = dot(s, y);
            let yy = dot(y, y);
            if yy > 0.0 {
                let gamma = sy / yy;
                for qv in q.iter_mut() {
                    *qv *= gamma;
                }
            }
        }
        for i in 0..k {
            let b = rho_hist[i] * dot(&y_hist[i], &q);
            for (qv, &sv) in q.iter_mut().zip(&s_hist[i]) {
                *qv += (alphas[i] - b) * sv;
            }
        }
        let direction: Vec<f64> = q.iter().map(|&v| -v).collect();

        // Armijo backtracking from a unit step.
        let dg = dot(&direction, &grad);
        if dg >= 0.0 {
            // Not a descent direction (numerical breakdown): restart memory
            // and use steepest descent.
            s_hist.clear();
            y_hist.clear();
            rho_hist.clear();
        }
        let (dir, dg) = if dg < 0.0 {
            (direction, dg)
        } else {
            let sd: Vec<f64> = grad.iter().map(|&g| -g).collect();
            let dg = -grad.iter().map(|g| g * g).sum::<f64>();
            (sd, dg)
        };

        // Weak-Wolfe line search with bracketing: shrink on an Armijo
        // failure, grow while the slope is still strongly negative. The
        // growth phase is what keeps L-BFGS from stalling when the inverse
        // Hessian estimate underestimates the step (e.g. in Rosenbrock's
        // valley).
        let c1 = 1e-4;
        let c2 = 0.9;
        let old_params = params.to_vec();
        let mut step = 1.0;
        let mut lo = 0.0f64;
        let mut hi = f64::INFINITY;
        let mut accepted: Option<(f64, f64, Vec<f64>)> = None;
        for _ in 0..30 {
            for ((p, &o), &d) in params.iter_mut().zip(&old_params).zip(&dir) {
                *p = o + step * d;
            }
            let (new_loss, new_grad) = objective(params);
            evals += 1;
            if !new_loss.is_finite() || new_loss > loss + c1 * step * dg {
                hi = step; // too long
            } else if dot(&new_grad, &dir) < c2 * dg {
                // Sufficient decrease but the slope is still steep: the
                // minimum along `dir` lies further out.
                accepted = Some((step, new_loss, new_grad));
                lo = step;
            } else {
                accepted = Some((step, new_loss, new_grad));
                break;
            }
            step = if hi.is_finite() {
                0.5 * (lo + hi)
            } else {
                step * 2.0
            };
        }
        let Some((best_step, new_loss, new_grad)) = accepted else {
            // No Armijo point found at any scale; restore and stop.
            params.copy_from_slice(&old_params);
            break;
        };
        // The loop may have probed past the accepted step; re-apply it.
        for ((p, &o), &d) in params.iter_mut().zip(&old_params).zip(&dir) {
            *p = o + best_step * d;
        }
        let s: Vec<f64> = params
            .iter()
            .zip(&old_params)
            .map(|(&p, &o)| p - o)
            .collect();
        let y: Vec<f64> = new_grad.iter().zip(&grad).map(|(&a, &b)| a - b).collect();
        let sy = dot(&s, &y);
        if sy > 1e-10 {
            if s_hist.len() == HISTORY {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
            rho_hist.push(1.0 / sy);
            s_hist.push(s);
            y_hist.push(y);
        }
        let progress = loss - new_loss;
        loss = new_loss;
        grad = new_grad;
        if progress.abs() < tol * loss.abs().max(1.0) * 1e-6 {
            converged = true;
            break;
        }
    }

    LbfgsReport {
        iterations,
        final_loss: loss,
        converged,
        evaluations: evals,
    }
}

/// Dot product with four independent accumulators.
///
/// The naive `.sum()` forms one serial addition chain, so every add waits on
/// the previous one; four lanes break the dependency and let the FMA units
/// pipeline. This sits on the L-BFGS two-loop hot path, where vectors are the
/// full parameter count of the model.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut chunks = a.chunks_exact(4).zip(b.chunks_exact(4));
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (xa, xb) in &mut chunks {
        s0 += xa[0] * xb[0];
        s1 += xa[1] * xb[1];
        s2 += xa[2] * xb[2];
        s3 += xa[3] * xb[3];
    }
    let mut tail = (s0 + s1) + (s2 + s3);
    for (&x, &y) in a
        .chunks_exact(4)
        .remainder()
        .iter()
        .zip(b.chunks_exact(4).remainder())
    {
        tail += x * y;
    }
    tail
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rosenbrock function — the classic L-BFGS stress test.
    fn rosenbrock(p: &[f64]) -> (f64, Vec<f64>) {
        let (x, y) = (p[0], p[1]);
        let loss = (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2);
        let gx = -2.0 * (1.0 - x) - 400.0 * x * (y - x * x);
        let gy = 200.0 * (y - x * x);
        (loss, vec![gx, gy])
    }

    fn quadratic(p: &[f64]) -> (f64, Vec<f64>) {
        // f = sum (p_i - i)^2
        let loss = p
            .iter()
            .enumerate()
            .map(|(i, &v)| (v - i as f64).powi(2))
            .sum();
        let grad = p
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * (v - i as f64))
            .collect();
        (loss, grad)
    }

    #[test]
    fn sgd_decreases_quadratic() {
        let mut params = vec![5.0, 5.0, 5.0];
        let mut sgd = Sgd::new(3, 0.9);
        for _ in 0..200 {
            let (_, g) = quadratic(&params);
            sgd.step(&mut params, &g, 0.05);
        }
        let (loss, _) = quadratic(&params);
        assert!(loss < 1e-3, "loss {loss}, params {params:?}");
    }

    #[test]
    fn momentum_accelerates_over_plain_sgd() {
        let run = |momentum: f64| {
            let mut params = vec![10.0];
            let mut sgd = Sgd::new(1, momentum);
            for _ in 0..30 {
                let g = vec![2.0 * params[0]];
                sgd.step(&mut params, &g, 0.01);
            }
            params[0].abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn adam_solves_quadratic() {
        let mut params = vec![5.0, -3.0, 8.0];
        let mut adam = Adam::new(3);
        for _ in 0..2000 {
            let (_, g) = quadratic(&params);
            adam.step(&mut params, &g, 0.05);
        }
        let (loss, _) = quadratic(&params);
        assert!(loss < 1e-3, "loss {loss}, params {params:?}");
    }

    #[test]
    fn lbfgs_solves_quadratic_quickly() {
        let mut params = vec![10.0, -10.0, 10.0, -10.0];
        let report = lbfgs(&mut params, 100, 1e-8, quadratic);
        assert!(report.final_loss < 1e-8, "loss {}", report.final_loss);
        assert!(report.iterations < 30, "took {} iters", report.iterations);
    }

    #[test]
    fn lbfgs_solves_rosenbrock() {
        let mut params = vec![-1.2, 1.0];
        let report = lbfgs(&mut params, 300, 1e-8, rosenbrock);
        assert!(
            (params[0] - 1.0).abs() < 1e-3 && (params[1] - 1.0).abs() < 1e-3,
            "params {params:?}, loss {}",
            report.final_loss
        );
    }

    #[test]
    fn lbfgs_zero_gradient_converges_immediately() {
        let mut params = vec![0.0, 1.0, 2.0];
        let report = lbfgs(&mut params, 100, 1e-8, quadratic);
        assert!(report.converged);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step ≈ lr in magnitude.
        let mut params = vec![1.0];
        let mut adam = Adam::new(1);
        adam.step(&mut params, &[10.0], 0.01);
        assert!((params[0] - (1.0 - 0.01)).abs() < 1e-6, "got {}", params[0]);
    }
}
