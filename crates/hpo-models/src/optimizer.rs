//! First-order and quasi-Newton optimizers over flat parameter vectors.
//!
//! The network flattens its weights into one `Vec<f64>`; these optimizers
//! are agnostic to the network structure. SGD and Adam consume per-batch
//! gradients; L-BFGS drives full-batch optimization through a closure.
//!
//! The SGD/Adam update loops are element-wise 4-lane kernels (bit-identical
//! to the scalar loops with `simd` on or off); the L-BFGS dots use the shared
//! fixed-lane reduction from [`hpo_data::simd`] (DESIGN.md §5.12).

use hpo_data::simd::{F64x4, LANES};
use hpo_data::simd_kernel;

simd_kernel! {
    /// `v = m·v − lr·g; θ += v` elementwise — same per-element expression
    /// tree as the scalar momentum loop, so results are bit-identical.
    fn sgd_step_kernel(params: &mut [f64], grad: &[f64], velocity: &mut [f64], momentum: f64, lr: f64) {
        let mo = F64x4::splat(momentum);
        let lr4 = F64x4::splat(lr);
        let mut pc = params.chunks_exact_mut(LANES);
        let mut gc = grad.chunks_exact(LANES);
        let mut vc = velocity.chunks_exact_mut(LANES);
        for ((p4, g4), v4) in (&mut pc).zip(&mut gc).zip(&mut vc) {
            let nv = mo.mul(F64x4::load(v4)).sub(lr4.mul(F64x4::load(g4)));
            nv.store(v4);
            F64x4::load(p4).add(nv).store(p4);
        }
        for ((p, &g), v) in pc
            .into_remainder()
            .iter_mut()
            .zip(gc.remainder())
            .zip(vc.into_remainder())
        {
            *v = momentum * *v - lr * g;
            *p += *v;
        }
    }
}

simd_kernel! {
    /// One bias-corrected Adam update, elementwise — divisions and square
    /// roots are IEEE-exact per lane, so this is bit-identical to the scalar
    /// loop.
    #[allow(clippy::too_many_arguments)]
    fn adam_step_kernel(
        params: &mut [f64],
        grad: &[f64],
        m: &mut [f64],
        v: &mut [f64],
        beta1: f64,
        beta2: f64,
        eps: f64,
        bc1: f64,
        bc2: f64,
        lr: f64,
    ) {
        let b1 = F64x4::splat(beta1);
        let b2 = F64x4::splat(beta2);
        let omb1 = F64x4::splat(1.0 - beta1);
        let omb2 = F64x4::splat(1.0 - beta2);
        let eps4 = F64x4::splat(eps);
        let bc14 = F64x4::splat(bc1);
        let bc24 = F64x4::splat(bc2);
        let lr4 = F64x4::splat(lr);
        let mut pc = params.chunks_exact_mut(LANES);
        let mut gc = grad.chunks_exact(LANES);
        let mut mc = m.chunks_exact_mut(LANES);
        let mut vc = v.chunks_exact_mut(LANES);
        for (((p4, g4), m4), v4) in (&mut pc).zip(&mut gc).zip(&mut mc).zip(&mut vc) {
            let g = F64x4::load(g4);
            let nm = b1.mul(F64x4::load(m4)).add(omb1.mul(g));
            let nv = b2.mul(F64x4::load(v4)).add(omb2.mul(g).mul(g));
            nm.store(m4);
            nv.store(v4);
            let m_hat = nm.div(bc14);
            let v_hat = nv.div(bc24);
            let upd = lr4.mul(m_hat).div(v_hat.sqrt().add(eps4));
            F64x4::load(p4).sub(upd).store(p4);
        }
        for (((p, &g), mi), vi) in pc
            .into_remainder()
            .iter_mut()
            .zip(gc.remainder())
            .zip(mc.into_remainder())
            .zip(vc.into_remainder())
        {
            *mi = beta1 * *mi + (1.0 - beta1) * g;
            *vi = beta2 * *vi + (1.0 - beta2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

/// Stochastic gradient descent with classical momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Momentum coefficient (paper Table III: 0.7/0.8/0.9).
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates SGD state for `n_params` parameters.
    pub fn new(n_params: usize, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum) || momentum == 0.0 || momentum < 1.0);
        Sgd {
            momentum,
            velocity: vec![0.0; n_params],
        }
    }

    /// Rebuilds SGD from a previously exported velocity buffer, so a warm
    /// restart continues with the same momentum the prior fit ended with.
    pub fn from_velocity(momentum: f64, velocity: Vec<f64>) -> Self {
        Sgd { momentum, velocity }
    }

    /// The momentum buffer, for snapshotting across budget rungs.
    pub fn velocity(&self) -> &[f64] {
        &self.velocity
    }

    /// Applies one update: `v = m·v − lr·g; θ += v`.
    pub fn step(&mut self, params: &mut [f64], grad: &[f64], lr: f64) {
        debug_assert_eq!(params.len(), grad.len());
        debug_assert_eq!(params.len(), self.velocity.len());
        sgd_step_kernel(params, grad, &mut self.velocity, self.momentum, lr);
    }
}

/// Adam (Kingma & Ba) with bias correction; scikit-learn's MLP default.
#[derive(Clone, Debug)]
pub struct Adam {
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates Adam state with the standard (β₁, β₂, ε) = (0.9, 0.999, 1e-8).
    pub fn new(n_params: usize) -> Self {
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// Rebuilds Adam from previously exported moment buffers and step count,
    /// so bias correction picks up exactly where the prior fit stopped.
    pub fn from_moments(m: Vec<f64>, v: Vec<f64>, t: u64) -> Self {
        debug_assert_eq!(m.len(), v.len());
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m,
            v,
            t,
        }
    }

    /// The first/second moment buffers and step count, for snapshotting
    /// across budget rungs.
    pub fn moments(&self) -> (&[f64], &[f64], u64) {
        (&self.m, &self.v, self.t)
    }

    /// Applies one bias-corrected update.
    pub fn step(&mut self, params: &mut [f64], grad: &[f64], lr: f64) {
        debug_assert_eq!(params.len(), grad.len());
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        adam_step_kernel(
            params,
            grad,
            &mut self.m,
            &mut self.v,
            self.beta1,
            self.beta2,
            self.eps,
            bc1,
            bc2,
            lr,
        );
    }
}

/// Outcome of an L-BFGS run.
#[derive(Clone, Debug)]
pub struct LbfgsReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Final objective value.
    pub final_loss: f64,
    /// Whether the gradient-norm/progress criterion was met before the
    /// iteration cap.
    pub converged: bool,
    /// Total objective/gradient evaluations (for cost accounting).
    pub evaluations: usize,
}

/// Limited-memory BFGS with Armijo backtracking line search.
///
/// `objective` must return `(loss, gradient)` at the given parameters.
/// `params` is optimized in place. History size `m = 10` matches common
/// practice (and scipy's default used by scikit-learn's `solver='lbfgs'`).
pub fn lbfgs(
    params: &mut [f64],
    max_iters: usize,
    tol: f64,
    mut objective: impl FnMut(&[f64]) -> (f64, Vec<f64>),
) -> LbfgsReport {
    const HISTORY: usize = 10;
    let _n = params.len();
    let mut evals = 0usize;

    let (mut loss, mut grad) = objective(params);
    evals += 1;

    let mut s_hist: Vec<Vec<f64>> = Vec::new();
    let mut y_hist: Vec<Vec<f64>> = Vec::new();
    let mut rho_hist: Vec<f64> = Vec::new();

    let mut converged = false;
    let mut iterations = 0usize;

    for _ in 0..max_iters {
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if gnorm < tol {
            converged = true;
            break;
        }
        iterations += 1;

        // Two-loop recursion to compute direction d = -H·g.
        let mut q = grad.clone();
        let k = s_hist.len();
        let mut alphas = vec![0.0; k];
        for i in (0..k).rev() {
            let a = rho_hist[i] * dot(&s_hist[i], &q);
            alphas[i] = a;
            for (qv, &yv) in q.iter_mut().zip(&y_hist[i]) {
                *qv -= a * yv;
            }
        }
        // Initial Hessian scaling γ = s·y / y·y from the latest pair.
        if let (Some(s), Some(y)) = (s_hist.last(), y_hist.last()) {
            let sy = dot(s, y);
            let yy = dot(y, y);
            if yy > 0.0 {
                let gamma = sy / yy;
                for qv in q.iter_mut() {
                    *qv *= gamma;
                }
            }
        }
        for i in 0..k {
            let b = rho_hist[i] * dot(&y_hist[i], &q);
            for (qv, &sv) in q.iter_mut().zip(&s_hist[i]) {
                *qv += (alphas[i] - b) * sv;
            }
        }
        let direction: Vec<f64> = q.iter().map(|&v| -v).collect();

        // Armijo backtracking from a unit step.
        let dg = dot(&direction, &grad);
        if dg >= 0.0 {
            // Not a descent direction (numerical breakdown): restart memory
            // and use steepest descent.
            s_hist.clear();
            y_hist.clear();
            rho_hist.clear();
        }
        let (dir, dg) = if dg < 0.0 {
            (direction, dg)
        } else {
            let sd: Vec<f64> = grad.iter().map(|&g| -g).collect();
            let dg = -grad.iter().map(|g| g * g).sum::<f64>();
            (sd, dg)
        };

        // Weak-Wolfe line search with bracketing: shrink on an Armijo
        // failure, grow while the slope is still strongly negative. The
        // growth phase is what keeps L-BFGS from stalling when the inverse
        // Hessian estimate underestimates the step (e.g. in Rosenbrock's
        // valley).
        let c1 = 1e-4;
        let c2 = 0.9;
        let old_params = params.to_vec();
        let mut step = 1.0;
        let mut lo = 0.0f64;
        let mut hi = f64::INFINITY;
        let mut accepted: Option<(f64, f64, Vec<f64>)> = None;
        for _ in 0..30 {
            for ((p, &o), &d) in params.iter_mut().zip(&old_params).zip(&dir) {
                *p = o + step * d;
            }
            let (new_loss, new_grad) = objective(params);
            evals += 1;
            if !new_loss.is_finite() || new_loss > loss + c1 * step * dg {
                hi = step; // too long
            } else if dot(&new_grad, &dir) < c2 * dg {
                // Sufficient decrease but the slope is still steep: the
                // minimum along `dir` lies further out.
                accepted = Some((step, new_loss, new_grad));
                lo = step;
            } else {
                accepted = Some((step, new_loss, new_grad));
                break;
            }
            step = if hi.is_finite() {
                0.5 * (lo + hi)
            } else {
                step * 2.0
            };
        }
        let Some((best_step, new_loss, new_grad)) = accepted else {
            // No Armijo point found at any scale; restore and stop.
            params.copy_from_slice(&old_params);
            break;
        };
        // The loop may have probed past the accepted step; re-apply it.
        for ((p, &o), &d) in params.iter_mut().zip(&old_params).zip(&dir) {
            *p = o + best_step * d;
        }
        let s: Vec<f64> = params
            .iter()
            .zip(&old_params)
            .map(|(&p, &o)| p - o)
            .collect();
        let y: Vec<f64> = new_grad.iter().zip(&grad).map(|(&a, &b)| a - b).collect();
        let sy = dot(&s, &y);
        if sy > 1e-10 {
            if s_hist.len() == HISTORY {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
            rho_hist.push(1.0 / sy);
            s_hist.push(s);
            y_hist.push(y);
        }
        let progress = loss - new_loss;
        loss = new_loss;
        grad = new_grad;
        if progress.abs() < tol * loss.abs().max(1.0) * 1e-6 {
            converged = true;
            break;
        }
    }

    LbfgsReport {
        iterations,
        final_loss: loss,
        converged,
        evaluations: evals,
    }
}

/// Dot product on the L-BFGS two-loop hot path, where vectors are the full
/// parameter count of the model.
///
/// Delegates to [`hpo_data::simd::dot`], whose fixed 4-lane accumulator
/// split is exactly the four-independent-accumulator scheme this function
/// used to hand-roll — same lane assignment, same `(s0+s1)+(s2+s3)`
/// collapse, same sequential tail — so values are unchanged.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    hpo_data::simd::dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rosenbrock function — the classic L-BFGS stress test.
    fn rosenbrock(p: &[f64]) -> (f64, Vec<f64>) {
        let (x, y) = (p[0], p[1]);
        let loss = (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2);
        let gx = -2.0 * (1.0 - x) - 400.0 * x * (y - x * x);
        let gy = 200.0 * (y - x * x);
        (loss, vec![gx, gy])
    }

    fn quadratic(p: &[f64]) -> (f64, Vec<f64>) {
        // f = sum (p_i - i)^2
        let loss = p
            .iter()
            .enumerate()
            .map(|(i, &v)| (v - i as f64).powi(2))
            .sum();
        let grad = p
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * (v - i as f64))
            .collect();
        (loss, grad)
    }

    #[test]
    fn sgd_decreases_quadratic() {
        let mut params = vec![5.0, 5.0, 5.0];
        let mut sgd = Sgd::new(3, 0.9);
        for _ in 0..200 {
            let (_, g) = quadratic(&params);
            sgd.step(&mut params, &g, 0.05);
        }
        let (loss, _) = quadratic(&params);
        assert!(loss < 1e-3, "loss {loss}, params {params:?}");
    }

    #[test]
    fn momentum_accelerates_over_plain_sgd() {
        let run = |momentum: f64| {
            let mut params = vec![10.0];
            let mut sgd = Sgd::new(1, momentum);
            for _ in 0..30 {
                let g = vec![2.0 * params[0]];
                sgd.step(&mut params, &g, 0.01);
            }
            params[0].abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn adam_solves_quadratic() {
        let mut params = vec![5.0, -3.0, 8.0];
        let mut adam = Adam::new(3);
        for _ in 0..2000 {
            let (_, g) = quadratic(&params);
            adam.step(&mut params, &g, 0.05);
        }
        let (loss, _) = quadratic(&params);
        assert!(loss < 1e-3, "loss {loss}, params {params:?}");
    }

    #[test]
    fn lbfgs_solves_quadratic_quickly() {
        let mut params = vec![10.0, -10.0, 10.0, -10.0];
        let report = lbfgs(&mut params, 100, 1e-8, quadratic);
        assert!(report.final_loss < 1e-8, "loss {}", report.final_loss);
        assert!(report.iterations < 30, "took {} iters", report.iterations);
    }

    #[test]
    fn lbfgs_solves_rosenbrock() {
        let mut params = vec![-1.2, 1.0];
        let report = lbfgs(&mut params, 300, 1e-8, rosenbrock);
        assert!(
            (params[0] - 1.0).abs() < 1e-3 && (params[1] - 1.0).abs() < 1e-3,
            "params {params:?}, loss {}",
            report.final_loss
        );
    }

    #[test]
    fn lbfgs_zero_gradient_converges_immediately() {
        let mut params = vec![0.0, 1.0, 2.0];
        let report = lbfgs(&mut params, 100, 1e-8, quadratic);
        assert!(report.converged);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step ≈ lr in magnitude.
        let mut params = vec![1.0];
        let mut adam = Adam::new(1);
        adam.step(&mut params, &[10.0], 0.01);
        assert!((params[0] - (1.0 - 0.01)).abs() < 1e-6, "got {}", params[0]);
    }
}
