//! Random forest classifier: bagged CART trees with per-tree feature
//! subsampling.
//!
//! A stronger deterministic-ish baseline than a single tree, and a second
//! model family for the model-agnostic evaluation path
//! (`hpo_core::evaluator::CvEvaluator::evaluate_fn`).

use crate::estimator::{Classifier, Estimator, TrainReport};
use crate::tree::{DecisionTreeClassifier, TreeParams};
use hpo_data::dataset::{Dataset, Task};
use hpo_data::error::DataError;
use hpo_data::matrix::Matrix;
use hpo_data::rng::rng_from_seed;
use rand::Rng;

/// Hyperparameters of the forest.
#[derive(Clone, Debug)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree CART settings.
    pub tree: TreeParams,
    /// Features sampled per tree; `0` means `ceil(sqrt(f))`
    /// (the usual classification default).
    pub max_features: usize,
    /// Bootstrap sample size as a fraction of `n` (1.0 = classic bagging).
    pub sample_fraction: f64,
    /// RNG seed for bootstrapping and feature subsampling.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 25,
            tree: TreeParams::default(),
            max_features: 0,
            sample_fraction: 1.0,
            seed: 0,
        }
    }
}

/// Bagged CART ensemble with majority-probability voting.
#[derive(Clone, Debug)]
pub struct RandomForestClassifier {
    /// Hyperparameters.
    pub params: ForestParams,
    /// Fitted trees with the feature columns each was trained on.
    trees: Vec<(DecisionTreeClassifier, Vec<usize>)>,
    n_classes: usize,
}

impl RandomForestClassifier {
    /// Creates an unfitted forest.
    pub fn new(params: ForestParams) -> Self {
        RandomForestClassifier {
            params,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Estimator for RandomForestClassifier {
    fn fit(&mut self, data: &Dataset) -> Result<TrainReport, DataError> {
        let k = match data.task() {
            Task::Regression => {
                return Err(DataError::invalid(
                    "data",
                    "RandomForestClassifier requires a classification dataset",
                ))
            }
            task => task.n_classes().expect("classification has classes"),
        };
        if data.n_instances() == 0 {
            return Err(DataError::invalid("data", "empty dataset"));
        }
        if self.params.n_trees == 0 {
            return Err(DataError::invalid("n_trees", "need at least one tree"));
        }
        if !(0.0 < self.params.sample_fraction && self.params.sample_fraction <= 1.0) {
            return Err(DataError::invalid("sample_fraction", "must be in (0, 1]"));
        }

        let n = data.n_instances();
        let f = data.n_features();
        let m = if self.params.max_features == 0 {
            ((f as f64).sqrt().ceil() as usize).clamp(1, f)
        } else {
            self.params.max_features.clamp(1, f)
        };
        let sample_n = (((n as f64) * self.params.sample_fraction).round() as usize).max(1);

        let mut rng = rng_from_seed(self.params.seed);
        self.trees.clear();
        self.n_classes = k;
        let mut total_cost = 0u64;
        for _ in 0..self.params.n_trees {
            // Bootstrap rows (with replacement) and subsample columns.
            let rows: Vec<usize> = (0..sample_n).map(|_| rng.gen_range(0..n)).collect();
            let cols = hpo_data::rng::sample_without_replacement(f, m, &mut rng);
            let subset = data.select(&rows).select_features(&cols);
            let mut tree = DecisionTreeClassifier::new(self.params.tree.clone());
            let report = tree.fit(&subset)?;
            total_cost += report.cost_units;
            self.trees.push((tree, cols));
        }
        Ok(TrainReport {
            epochs: self.params.n_trees,
            final_loss: 0.0,
            cost_units: total_cost,
            stopped_early: false,
            diverged: false,
        })
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let p = self.predict_proba(x);
        (0..p.rows())
            .map(|r| {
                let row = p.row(r);
                let mut best = 0;
                for (c, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = c;
                    }
                }
                best as f64
            })
            .collect()
    }
}

impl Classifier for RandomForestClassifier {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(
            !self.trees.is_empty(),
            "RandomForestClassifier::predict called before fit"
        );
        let mut proba = Matrix::zeros(x.rows(), self.n_classes);
        for (tree, cols) in &self.trees {
            let view = x.select_cols(cols);
            proba.axpy(1.0, &tree.predict_proba(&view));
        }
        proba.scale_inplace(1.0 / self.trees.len() as f64);
        proba
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::synth::{make_classification, ClassificationSpec};

    fn acc(t: &[f64], p: &[f64]) -> f64 {
        t.iter().zip(p).filter(|(a, b)| a == b).count() as f64 / t.len() as f64
    }

    fn noisy_data(seed: u64) -> Dataset {
        make_classification(
            &ClassificationSpec {
                n_instances: 300,
                n_features: 8,
                n_informative: 6,
                n_classes: 2,
                n_blobs: 4,
                label_noise: 0.1,
                blob_spread: 0.5,
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn forest_beats_or_matches_single_tree_on_noisy_data() {
        let train = noisy_data(1);
        let test = noisy_data(2); // same generator seed family? different draw
                                  // Use a train/test split of ONE draw to share geometry.
        let mut rng = rng_from_seed(1);
        let tt = hpo_data::split::stratified_train_test_split(&train, 0.3, &mut rng).unwrap();
        let _ = test;

        let mut single = DecisionTreeClassifier::new(TreeParams::default());
        single.fit(&tt.train).unwrap();
        let tree_acc = acc(tt.test.y(), &single.predict(tt.test.x()));

        let mut forest = RandomForestClassifier::new(ForestParams {
            n_trees: 30,
            seed: 1,
            ..Default::default()
        });
        forest.fit(&tt.train).unwrap();
        let forest_acc = acc(tt.test.y(), &forest.predict(tt.test.x()));
        assert!(
            forest_acc >= tree_acc - 0.03,
            "forest {forest_acc} much worse than single tree {tree_acc}"
        );
        assert_eq!(forest.n_trees(), 30);
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let data = noisy_data(3);
        let mut forest = RandomForestClassifier::new(ForestParams {
            n_trees: 7,
            ..Default::default()
        });
        forest.fit(&data).unwrap();
        let p = forest.predict_proba(data.x());
        for row in p.iter_rows() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let data = noisy_data(4);
        let run = |seed| {
            let mut f = RandomForestClassifier::new(ForestParams {
                n_trees: 5,
                seed,
                ..Default::default()
            });
            f.fit(&data).unwrap();
            f.predict(data.x())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn parameter_validation() {
        let data = noisy_data(5);
        let mut zero = RandomForestClassifier::new(ForestParams {
            n_trees: 0,
            ..Default::default()
        });
        assert!(zero.fit(&data).is_err());
        let mut bad_frac = RandomForestClassifier::new(ForestParams {
            sample_fraction: 0.0,
            ..Default::default()
        });
        assert!(bad_frac.fit(&data).is_err());
    }

    #[test]
    fn max_features_defaults_to_sqrt() {
        let data = noisy_data(6);
        let mut forest = RandomForestClassifier::new(ForestParams {
            n_trees: 3,
            max_features: 0, // sqrt(8) -> 3
            seed: 2,
            ..Default::default()
        });
        forest.fit(&data).unwrap();
        // every stored column list has ceil(sqrt(8)) = 3 entries
        for (_, cols) in &forest.trees {
            assert_eq!(cols.len(), 3);
        }
    }
}
