//! The MLP classifier (softmax output, cross-entropy loss).

use super::network::Network;
use super::params::MlpParams;
use super::snapshot::{FitState, SolverState};
use super::train::train_continuing;
use crate::estimator::{Classifier, Estimator, TrainReport};
use crate::loss::{one_hot, OutputLoss};
use hpo_data::dataset::{Dataset, Task};
use hpo_data::error::DataError;
use hpo_data::matrix::Matrix;

/// Multi-layer perceptron classifier mirroring scikit-learn's
/// `MLPClassifier` over the paper's hyperparameters.
///
/// ```
/// use hpo_models::mlp::{MlpClassifier, MlpParams};
/// use hpo_models::estimator::Estimator;
/// use hpo_data::synth::{make_classification, ClassificationSpec};
///
/// let data = make_classification(&ClassificationSpec::default(), 42);
/// let mut clf = MlpClassifier::new(MlpParams {
///     hidden_layer_sizes: vec![16],
///     max_iter: 20,
///     ..Default::default()
/// });
/// clf.fit(&data).unwrap();
/// let preds = clf.predict(data.x());
/// assert_eq!(preds.len(), data.n_instances());
/// ```
#[derive(Clone, Debug)]
pub struct MlpClassifier {
    params: MlpParams,
    net: Option<Network>,
    n_classes: usize,
    solver_state: Option<SolverState>,
    epochs_done: usize,
}

impl MlpClassifier {
    /// Creates an unfitted classifier with the given hyperparameters.
    pub fn new(params: MlpParams) -> Self {
        MlpClassifier {
            params,
            net: None,
            n_classes: 0,
            solver_state: None,
            epochs_done: 0,
        }
    }

    /// The hyperparameters this classifier was built with.
    pub fn params(&self) -> &MlpParams {
        &self.params
    }

    fn fitted_net(&self) -> &Network {
        self.net
            .as_ref()
            .expect("MlpClassifier::predict called before fit")
    }

    /// Exports the fitted weights + solver buffers as a resumable snapshot,
    /// or `None` before any successful `fit`/`warm_fit`.
    pub fn fit_state(&self) -> Option<FitState> {
        let net = self.net.as_ref()?;
        Some(FitState {
            sizes: net.sizes().to_vec(),
            weights: net.params_flat(),
            solver: self.solver_state.clone().unwrap_or(SolverState::Lbfgs),
            epochs: self.epochs_done,
        })
    }

    /// Resumes training from `state` (a snapshot of a prior fit of this
    /// configuration on a smaller data subset), running at most `epoch_cap`
    /// epochs. Falls back to a full cold [`Estimator::fit`] when the snapshot
    /// shape doesn't match this configuration's network.
    ///
    /// # Errors
    /// Returns [`DataError`] for the same inputs `fit` rejects.
    pub fn warm_fit(
        &mut self,
        data: &Dataset,
        state: &FitState,
        epoch_cap: usize,
    ) -> Result<TrainReport, DataError> {
        let k = match data.task() {
            Task::Regression => {
                return Err(DataError::invalid(
                    "data",
                    "MlpClassifier requires a classification dataset",
                ))
            }
            task => task.n_classes().expect("classification task has classes"),
        };
        if data.n_instances() == 0 {
            return Err(DataError::invalid("data", "cannot fit on an empty dataset"));
        }
        let mut sizes = Vec::with_capacity(self.params.hidden_layer_sizes.len() + 2);
        sizes.push(data.n_features());
        sizes.extend_from_slice(&self.params.hidden_layer_sizes);
        sizes.push(k);
        let n_weights: usize = sizes.windows(2).map(|w| w[0] * w[1] + w[1]).sum();
        if state.sizes != sizes || state.weights.len() != n_weights {
            return self.fit(data);
        }
        let mut net = Network::new(
            sizes,
            self.params.activation,
            OutputLoss::SoftmaxCrossEntropy,
            self.params.seed,
        );
        net.set_params_flat(&state.weights);
        let params = MlpParams {
            max_iter: epoch_cap.max(1),
            ..self.params.clone()
        };
        let targets = one_hot(data.y(), k);
        let (report, solver) =
            train_continuing(&mut net, data.x(), &targets, &params, Some(&state.solver));
        self.net = Some(net);
        self.n_classes = k;
        self.solver_state = Some(solver);
        self.epochs_done = state.epochs + report.epochs;
        Ok(report)
    }
}

impl Estimator for MlpClassifier {
    fn fit(&mut self, data: &Dataset) -> Result<TrainReport, DataError> {
        let k = match data.task() {
            Task::Regression => {
                return Err(DataError::invalid(
                    "data",
                    "MlpClassifier requires a classification dataset",
                ))
            }
            task => task.n_classes().expect("classification task has classes"),
        };
        if data.n_instances() == 0 {
            return Err(DataError::invalid("data", "cannot fit on an empty dataset"));
        }
        let mut sizes = Vec::with_capacity(self.params.hidden_layer_sizes.len() + 2);
        sizes.push(data.n_features());
        sizes.extend_from_slice(&self.params.hidden_layer_sizes);
        sizes.push(k);
        let mut net = Network::new(
            sizes,
            self.params.activation,
            OutputLoss::SoftmaxCrossEntropy,
            self.params.seed,
        );
        let targets = one_hot(data.y(), k);
        let (report, solver) = train_continuing(&mut net, data.x(), &targets, &self.params, None);
        self.net = Some(net);
        self.n_classes = k;
        self.solver_state = Some(solver);
        self.epochs_done = report.epochs;
        Ok(report)
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let proba = self.predict_proba(x);
        (0..proba.rows())
            .map(|r| {
                let row = proba.row(r);
                let mut best = 0usize;
                let mut best_v = f64::NEG_INFINITY;
                for (c, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = c;
                    }
                }
                best as f64
            })
            .collect()
    }
}

impl Classifier for MlpClassifier {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        self.fitted_net().predict_raw(x)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::synth::{make_classification, ClassificationSpec};
    use hpo_metrics_shim::accuracy;

    // Local accuracy helper to avoid a dev-dependency cycle with hpo-metrics.
    mod hpo_metrics_shim {
        pub fn accuracy(t: &[f64], p: &[f64]) -> f64 {
            t.iter().zip(p).filter(|(a, b)| a == b).count() as f64 / t.len() as f64
        }
    }

    fn easy_dataset(seed: u64) -> Dataset {
        make_classification(
            &ClassificationSpec {
                n_instances: 300,
                n_features: 6,
                n_informative: 6,
                n_classes: 2,
                n_blobs: 2,
                label_purity: 0.98,
                label_noise: 0.0,
                blob_spread: 0.3,
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn learns_separable_data_well() {
        let data = easy_dataset(1);
        let mut clf = MlpClassifier::new(MlpParams {
            hidden_layer_sizes: vec![16],
            learning_rate_init: 0.01,
            max_iter: 60,
            seed: 1,
            ..Default::default()
        });
        clf.fit(&data).unwrap();
        let acc = accuracy(data.y(), &clf.predict(data.x()));
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    fn multiclass_probabilities_are_valid() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 200,
                n_classes: 3,
                n_blobs: 3,
                ..Default::default()
            },
            2,
        );
        let mut clf = MlpClassifier::new(MlpParams {
            hidden_layer_sizes: vec![8],
            max_iter: 10,
            ..Default::default()
        });
        clf.fit(&data).unwrap();
        assert_eq!(clf.n_classes(), 3);
        let p = clf.predict_proba(data.x());
        assert_eq!(p.shape(), (200, 3));
        for row in p.iter_rows() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        // predictions are valid class indices
        assert!(clf.predict(data.x()).iter().all(|&c| c < 3.0));
    }

    #[test]
    fn rejects_regression_dataset() {
        let x = Matrix::zeros(5, 2);
        let data = Dataset::new(x, vec![0.5; 5], Task::Regression).unwrap();
        let mut clf = MlpClassifier::new(MlpParams::default());
        assert!(clf.fit(&data).is_err());
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let clf = MlpClassifier::new(MlpParams::default());
        clf.predict(&Matrix::zeros(1, 2));
    }

    #[test]
    fn refit_replaces_previous_model() {
        let data = easy_dataset(3);
        let mut clf = MlpClassifier::new(MlpParams {
            hidden_layer_sizes: vec![4],
            max_iter: 5,
            ..Default::default()
        });
        clf.fit(&data).unwrap();
        let first = clf.predict(data.x());
        // Refit on relabeled data; predictions must follow the new fit.
        let flipped: Vec<f64> = data.y().iter().map(|&y| 1.0 - y).collect();
        let data2 = data
            .with_labels(flipped, Task::BinaryClassification)
            .unwrap();
        clf.fit(&data2).unwrap();
        let second = clf.predict(data2.x());
        assert_eq!(first.len(), second.len());
    }

    #[test]
    fn warm_fit_resumes_from_snapshot() {
        let data = easy_dataset(5);
        let mut clf = MlpClassifier::new(MlpParams {
            hidden_layer_sizes: vec![8],
            max_iter: 10,
            seed: 5,
            ..Default::default()
        });
        clf.fit(&data).unwrap();
        let state = clf.fit_state().expect("fitted model exports state");
        assert_eq!(state.epochs, 10);

        // Continue for 5 more epochs on the full data from the snapshot.
        let mut warm = MlpClassifier::new(clf.params().clone());
        let report = warm.warm_fit(&data, &state, 5).unwrap();
        assert!(report.epochs <= 5);
        let warm_state = warm.fit_state().unwrap();
        assert_eq!(warm_state.epochs, 10 + report.epochs);
        // The warm fit started from the snapshot weights, not a fresh init.
        assert_ne!(warm_state.weights, state.weights);
        let acc = accuracy(data.y(), &warm.predict(data.x()));
        assert!(acc > 0.5, "warm-fit accuracy collapsed: {acc}");
    }

    #[test]
    fn warm_fit_with_mismatched_snapshot_falls_back_to_cold_fit() {
        let data = easy_dataset(6);
        let mut clf = MlpClassifier::new(MlpParams {
            hidden_layer_sizes: vec![4],
            max_iter: 3,
            ..Default::default()
        });
        let bogus = crate::mlp::FitState {
            sizes: vec![6, 99, 2],
            weights: vec![0.0; 10],
            solver: crate::mlp::SolverState::Lbfgs,
            epochs: 1,
        };
        let report = clf.warm_fit(&data, &bogus, 1).unwrap();
        // Cold fallback runs the full epoch budget, not the continuation cap.
        assert_eq!(report.epochs, 3);
    }

    #[test]
    fn subset_with_single_class_still_outputs_all_classes() {
        // A CV fold can contain one class only; the model must still emit
        // probabilities for every global class.
        let data = easy_dataset(4);
        let only_zero: Vec<usize> = (0..data.n_instances())
            .filter(|&i| data.class(i) == 0)
            .take(30)
            .collect();
        let sub = data.select(&only_zero);
        let mut clf = MlpClassifier::new(MlpParams {
            hidden_layer_sizes: vec![4],
            max_iter: 5,
            ..Default::default()
        });
        clf.fit(&sub).unwrap();
        assert_eq!(clf.n_classes(), 2);
        assert_eq!(clf.predict_proba(sub.x()).cols(), 2);
    }
}
