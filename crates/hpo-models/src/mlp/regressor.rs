//! The MLP regressor (identity output, squared-error loss).

use super::network::Network;
use super::params::MlpParams;
use super::train::train;
use crate::estimator::{Estimator, Regressor, TrainReport};
use crate::loss::OutputLoss;
use hpo_data::dataset::{Dataset, Task};
use hpo_data::error::DataError;
use hpo_data::matrix::Matrix;

/// Multi-layer perceptron regressor mirroring scikit-learn's `MLPRegressor`.
#[derive(Clone, Debug)]
pub struct MlpRegressor {
    params: MlpParams,
    net: Option<Network>,
}

impl MlpRegressor {
    /// Creates an unfitted regressor with the given hyperparameters.
    pub fn new(params: MlpParams) -> Self {
        MlpRegressor { params, net: None }
    }

    /// The hyperparameters this regressor was built with.
    pub fn params(&self) -> &MlpParams {
        &self.params
    }
}

impl Estimator for MlpRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<TrainReport, DataError> {
        if data.task() != Task::Regression {
            return Err(DataError::invalid(
                "data",
                "MlpRegressor requires a regression dataset",
            ));
        }
        if data.n_instances() == 0 {
            return Err(DataError::invalid("data", "cannot fit on an empty dataset"));
        }
        let mut sizes = Vec::with_capacity(self.params.hidden_layer_sizes.len() + 2);
        sizes.push(data.n_features());
        sizes.extend_from_slice(&self.params.hidden_layer_sizes);
        sizes.push(1);
        let mut net = Network::new(
            sizes,
            self.params.activation,
            OutputLoss::SquaredError,
            self.params.seed,
        );
        let targets = Matrix::from_vec(data.n_instances(), 1, data.y().to_vec())
            .expect("label vector reshapes to a column");
        let report = train(&mut net, data.x(), &targets, &self.params);
        self.net = Some(net);
        Ok(report)
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let net = self
            .net
            .as_ref()
            .expect("MlpRegressor::predict called before fit");
        net.predict_raw(x).col_to_vec(0)
    }
}

impl Regressor for MlpRegressor {}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::synth::{make_regression, RegressionSpec};

    fn r2_of(t: &[f64], p: &[f64]) -> f64 {
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        let ss_tot: f64 = t.iter().map(|&v| (v - mean).powi(2)).sum();
        let ss_res: f64 = t.iter().zip(p).map(|(&a, &b)| (a - b).powi(2)).sum();
        1.0 - ss_res / ss_tot
    }

    #[test]
    fn fits_smooth_regression_target() {
        let data = make_regression(
            &RegressionSpec {
                n_instances: 400,
                n_features: 5,
                n_informative: 5,
                noise: 0.05,
                blob_effect: 0.0,
                ..Default::default()
            },
            1,
        );
        let mut reg = MlpRegressor::new(MlpParams {
            hidden_layer_sizes: vec![32],
            learning_rate_init: 0.01,
            max_iter: 100,
            n_iter_no_change: 100,
            seed: 1,
            ..Default::default()
        });
        reg.fit(&data).unwrap();
        let r2 = r2_of(data.y(), &reg.predict(data.x()));
        assert!(r2 > 0.8, "train R² {r2}");
    }

    #[test]
    fn rejects_classification_dataset() {
        let x = Matrix::zeros(4, 2);
        let data = Dataset::new(x, vec![0.0, 1.0, 0.0, 1.0], Task::BinaryClassification).unwrap();
        let mut reg = MlpRegressor::new(MlpParams::default());
        assert!(reg.fit(&data).is_err());
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let reg = MlpRegressor::new(MlpParams::default());
        reg.predict(&Matrix::zeros(1, 2));
    }

    #[test]
    fn lbfgs_solver_works_for_regression() {
        let data = make_regression(
            &RegressionSpec {
                n_instances: 200,
                n_features: 3,
                n_informative: 3,
                noise: 0.01,
                blob_effect: 0.0,
                ..Default::default()
            },
            2,
        );
        let mut reg = MlpRegressor::new(MlpParams {
            hidden_layer_sizes: vec![16],
            solver: crate::mlp::Solver::Lbfgs,
            max_iter: 150,
            seed: 2,
            ..Default::default()
        });
        let report = reg.fit(&data).unwrap();
        let r2 = r2_of(data.y(), &reg.predict(data.x()));
        assert!(r2 > 0.8, "train R² {r2}, loss {}", report.final_loss);
    }
}
