//! The MLP regressor (identity output, squared-error loss).

use super::network::Network;
use super::params::MlpParams;
use super::snapshot::{FitState, SolverState};
use super::train::train_continuing;
use crate::estimator::{Estimator, Regressor, TrainReport};
use crate::loss::OutputLoss;
use hpo_data::dataset::{Dataset, Task};
use hpo_data::error::DataError;
use hpo_data::matrix::Matrix;

/// Multi-layer perceptron regressor mirroring scikit-learn's `MLPRegressor`.
#[derive(Clone, Debug)]
pub struct MlpRegressor {
    params: MlpParams,
    net: Option<Network>,
    solver_state: Option<SolverState>,
    epochs_done: usize,
}

impl MlpRegressor {
    /// Creates an unfitted regressor with the given hyperparameters.
    pub fn new(params: MlpParams) -> Self {
        MlpRegressor {
            params,
            net: None,
            solver_state: None,
            epochs_done: 0,
        }
    }

    /// The hyperparameters this regressor was built with.
    pub fn params(&self) -> &MlpParams {
        &self.params
    }

    /// Exports the fitted weights + solver buffers as a resumable snapshot,
    /// or `None` before any successful `fit`/`warm_fit`.
    pub fn fit_state(&self) -> Option<FitState> {
        let net = self.net.as_ref()?;
        Some(FitState {
            sizes: net.sizes().to_vec(),
            weights: net.params_flat(),
            solver: self.solver_state.clone().unwrap_or(SolverState::Lbfgs),
            epochs: self.epochs_done,
        })
    }

    /// Resumes training from `state` (a snapshot of a prior fit of this
    /// configuration on a smaller data subset), running at most `epoch_cap`
    /// epochs. Falls back to a full cold [`Estimator::fit`] when the snapshot
    /// shape doesn't match this configuration's network.
    ///
    /// # Errors
    /// Returns [`DataError`] for the same inputs `fit` rejects.
    pub fn warm_fit(
        &mut self,
        data: &Dataset,
        state: &FitState,
        epoch_cap: usize,
    ) -> Result<TrainReport, DataError> {
        if data.task() != Task::Regression {
            return Err(DataError::invalid(
                "data",
                "MlpRegressor requires a regression dataset",
            ));
        }
        if data.n_instances() == 0 {
            return Err(DataError::invalid("data", "cannot fit on an empty dataset"));
        }
        let mut sizes = Vec::with_capacity(self.params.hidden_layer_sizes.len() + 2);
        sizes.push(data.n_features());
        sizes.extend_from_slice(&self.params.hidden_layer_sizes);
        sizes.push(1);
        let n_weights: usize = sizes.windows(2).map(|w| w[0] * w[1] + w[1]).sum();
        if state.sizes != sizes || state.weights.len() != n_weights {
            return self.fit(data);
        }
        let mut net = Network::new(
            sizes,
            self.params.activation,
            OutputLoss::SquaredError,
            self.params.seed,
        );
        net.set_params_flat(&state.weights);
        let params = MlpParams {
            max_iter: epoch_cap.max(1),
            ..self.params.clone()
        };
        let targets = Matrix::from_vec(data.n_instances(), 1, data.y().to_vec())
            .expect("label vector reshapes to a column");
        let (report, solver) =
            train_continuing(&mut net, data.x(), &targets, &params, Some(&state.solver));
        self.net = Some(net);
        self.solver_state = Some(solver);
        self.epochs_done = state.epochs + report.epochs;
        Ok(report)
    }
}

impl Estimator for MlpRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<TrainReport, DataError> {
        if data.task() != Task::Regression {
            return Err(DataError::invalid(
                "data",
                "MlpRegressor requires a regression dataset",
            ));
        }
        if data.n_instances() == 0 {
            return Err(DataError::invalid("data", "cannot fit on an empty dataset"));
        }
        let mut sizes = Vec::with_capacity(self.params.hidden_layer_sizes.len() + 2);
        sizes.push(data.n_features());
        sizes.extend_from_slice(&self.params.hidden_layer_sizes);
        sizes.push(1);
        let mut net = Network::new(
            sizes,
            self.params.activation,
            OutputLoss::SquaredError,
            self.params.seed,
        );
        let targets = Matrix::from_vec(data.n_instances(), 1, data.y().to_vec())
            .expect("label vector reshapes to a column");
        let (report, solver) = train_continuing(&mut net, data.x(), &targets, &self.params, None);
        self.net = Some(net);
        self.solver_state = Some(solver);
        self.epochs_done = report.epochs;
        Ok(report)
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let net = self
            .net
            .as_ref()
            .expect("MlpRegressor::predict called before fit");
        net.predict_raw(x).col_to_vec(0)
    }
}

impl Regressor for MlpRegressor {}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::synth::{make_regression, RegressionSpec};

    fn r2_of(t: &[f64], p: &[f64]) -> f64 {
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        let ss_tot: f64 = t.iter().map(|&v| (v - mean).powi(2)).sum();
        let ss_res: f64 = t.iter().zip(p).map(|(&a, &b)| (a - b).powi(2)).sum();
        1.0 - ss_res / ss_tot
    }

    #[test]
    fn fits_smooth_regression_target() {
        let data = make_regression(
            &RegressionSpec {
                n_instances: 400,
                n_features: 5,
                n_informative: 5,
                noise: 0.05,
                blob_effect: 0.0,
                ..Default::default()
            },
            1,
        );
        let mut reg = MlpRegressor::new(MlpParams {
            hidden_layer_sizes: vec![32],
            learning_rate_init: 0.01,
            max_iter: 100,
            n_iter_no_change: 100,
            seed: 1,
            ..Default::default()
        });
        reg.fit(&data).unwrap();
        let r2 = r2_of(data.y(), &reg.predict(data.x()));
        assert!(r2 > 0.8, "train R² {r2}");
    }

    #[test]
    fn rejects_classification_dataset() {
        let x = Matrix::zeros(4, 2);
        let data = Dataset::new(x, vec![0.0, 1.0, 0.0, 1.0], Task::BinaryClassification).unwrap();
        let mut reg = MlpRegressor::new(MlpParams::default());
        assert!(reg.fit(&data).is_err());
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let reg = MlpRegressor::new(MlpParams::default());
        reg.predict(&Matrix::zeros(1, 2));
    }

    #[test]
    fn warm_fit_resumes_regression_training() {
        let data = make_regression(
            &RegressionSpec {
                n_instances: 200,
                n_features: 4,
                n_informative: 4,
                noise: 0.05,
                blob_effect: 0.0,
                ..Default::default()
            },
            3,
        );
        let mut reg = MlpRegressor::new(MlpParams {
            hidden_layer_sizes: vec![8],
            learning_rate_init: 0.01,
            max_iter: 20,
            n_iter_no_change: 100,
            seed: 3,
            ..Default::default()
        });
        reg.fit(&data).unwrap();
        let state = reg.fit_state().unwrap();
        let mut warm = MlpRegressor::new(reg.params().clone());
        let report = warm.warm_fit(&data, &state, 10).unwrap();
        assert!(report.epochs <= 10);
        assert_eq!(warm.fit_state().unwrap().epochs, 20 + report.epochs);
    }

    #[test]
    fn lbfgs_solver_works_for_regression() {
        let data = make_regression(
            &RegressionSpec {
                n_instances: 200,
                n_features: 3,
                n_informative: 3,
                noise: 0.01,
                blob_effect: 0.0,
                ..Default::default()
            },
            2,
        );
        let mut reg = MlpRegressor::new(MlpParams {
            hidden_layer_sizes: vec![16],
            solver: crate::mlp::Solver::Lbfgs,
            max_iter: 150,
            seed: 2,
            ..Default::default()
        });
        let report = reg.fit(&data).unwrap();
        let r2 = r2_of(data.y(), &reg.predict(data.x()));
        assert!(r2 > 0.8, "train R² {r2}, loss {}", report.final_loss);
    }
}
