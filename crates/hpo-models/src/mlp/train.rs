//! The solver-dispatching training loop.
//!
//! Shared by the classifier and the regressor: takes a network, a prepared
//! target matrix (one-hot or raw), and the hyperparameters, and runs SGD,
//! Adam or L-BFGS with schedules, early stopping and deterministic cost
//! accounting.

use super::network::Network;
use super::params::{MlpParams, Solver};
use super::snapshot::SolverState;
use crate::estimator::TrainReport;
use crate::optimizer::{lbfgs, Adam, Sgd};
use crate::schedule::ScheduleState;
use hpo_data::matrix::Matrix;
use hpo_data::rng::{rng_from_seed, shuffled_indices};

/// Trains `net` on `(x, targets)` according to `params`.
///
/// Forward+backward over one instance is costed at `3 ×` the forward MACs
/// (the usual 1:2 forward:backward rule of thumb), giving the deterministic
/// `cost_units` of the returned report.
pub fn train(net: &mut Network, x: &Matrix, targets: &Matrix, params: &MlpParams) -> TrainReport {
    train_continuing(net, x, targets, params, None).0
}

/// Like [`train`], but optionally resumes the solver from a prior fit's
/// exported state and always returns the final solver state so the caller
/// can snapshot it for the next continuation.
///
/// `net` must already hold the warm weights when `resume` is given (set them
/// with `Network::set_params_flat` from the snapshot). A `resume` state whose
/// solver kind or parameter count doesn't match `params`/`net` is ignored and
/// the solver starts cold — the weights still carry over.
///
/// L-BFGS ignores `resume` entirely: its curvature history belongs to the
/// objective it was built against (see [`super::snapshot`]), so continuation
/// is warm weights + a fresh memory.
pub fn train_continuing(
    net: &mut Network,
    x: &Matrix,
    targets: &Matrix,
    params: &MlpParams,
    resume: Option<&SolverState>,
) -> (TrainReport, SolverState) {
    params.validate();
    assert_eq!(x.rows(), targets.rows(), "sample/target count mismatch");
    assert!(x.rows() > 0, "cannot train on an empty dataset");

    match params.solver {
        Solver::Lbfgs => (train_lbfgs(net, x, targets, params), SolverState::Lbfgs),
        Solver::Sgd | Solver::Adam => train_minibatch(net, x, targets, params, resume),
    }
}

fn train_lbfgs(net: &mut Network, x: &Matrix, targets: &Matrix, params: &MlpParams) -> TrainReport {
    let mut flat = net.params_flat();
    let cost_fb = 3 * net.cost_per_instance() * x.rows() as u64;
    // The closure needs its own copy to evaluate at trial points.
    let mut probe = net.clone();
    let mut evals = 0u64;
    let report = lbfgs(&mut flat, params.max_iter, params.tol, |p| {
        probe.set_params_flat(p);
        evals += 1;
        probe.loss_grad(x, targets, params.alpha)
    });
    net.set_params_flat(&flat);
    TrainReport {
        epochs: report.iterations,
        final_loss: report.final_loss,
        cost_units: evals * cost_fb,
        stopped_early: report.converged,
        diverged: !report.final_loss.is_finite(),
    }
}

fn train_minibatch(
    net: &mut Network,
    x: &Matrix,
    targets: &Matrix,
    params: &MlpParams,
    resume: Option<&SolverState>,
) -> (TrainReport, SolverState) {
    let n = x.rows();
    let mut rng = rng_from_seed(params.seed.wrapping_add(0x5eed));

    // Optional validation split for early stopping.
    let (train_idx, val_idx): (Vec<usize>, Vec<usize>) = if params.early_stopping {
        let n_val = ((n as f64) * params.validation_fraction).round() as usize;
        let n_val = n_val.clamp(1, n.saturating_sub(1).max(1));
        let idx = shuffled_indices(n, &mut rng);
        let (val, train) = idx.split_at(n_val.min(n.saturating_sub(1)));
        (train.to_vec(), val.to_vec())
    } else {
        ((0..n).collect(), Vec::new())
    };
    let (x_val, t_val) = if val_idx.is_empty() {
        (None, None)
    } else {
        (
            Some(x.select_rows(&val_idx)),
            Some(targets.select_rows(&val_idx)),
        )
    };
    let x_train = x.select_rows(&train_idx);
    let t_train = targets.select_rows(&train_idx);
    let n_train = x_train.rows();
    let batch_size = params.batch_size.min(n_train).max(1);

    let n_params = net.n_params();
    // Resume the matching solver's buffers when their shape fits; anything
    // else (solver switch, different architecture) silently starts cold.
    let mut sgd = match resume {
        Some(SolverState::Sgd { velocity }) if velocity.len() == n_params => {
            Sgd::from_velocity(params.momentum, velocity.clone())
        }
        _ => Sgd::new(n_params, params.momentum),
    };
    let mut adam = match resume {
        Some(SolverState::Adam { m, v, t }) if m.len() == n_params && v.len() == n_params => {
            Adam::from_moments(m.clone(), v.clone(), *t)
        }
        _ => Adam::new(n_params),
    };
    let mut schedule =
        ScheduleState::new(params.learning_rate, params.learning_rate_init, params.tol);

    let cost_per_batch_row = 3 * net.cost_per_instance();
    let mut cost_units = 0u64;
    let mut flat = net.params_flat();

    let mut best_monitor = f64::INFINITY;
    let mut no_change = 0usize;
    let mut stopped_early = false;
    let mut diverged = false;
    let mut epochs = 0usize;
    let mut epoch_loss = f64::INFINITY;

    'epochs: for _epoch in 0..params.max_iter {
        epochs += 1;
        let order = shuffled_indices(n_train, &mut rng);
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(batch_size) {
            let xb = x_train.select_rows(chunk);
            let tb = t_train.select_rows(chunk);
            net.set_params_flat(&flat);
            let (loss, grad) = net.loss_grad(&xb, &tb, params.alpha);
            cost_units += cost_per_batch_row * chunk.len() as u64;
            if !loss.is_finite() || grad.iter().any(|g| !g.is_finite()) {
                // Diverged (e.g. lr too high): stop *before* the non-finite
                // gradient poisons the weights — `flat` still holds the last
                // finite iterate.
                diverged = true;
                epoch_loss = loss;
                break 'epochs;
            }
            match params.solver {
                // Only SGD honours the schedule, as in scikit-learn.
                Solver::Sgd => sgd.step(&mut flat, &grad, schedule.current()),
                Solver::Adam => adam.step(&mut flat, &grad, params.learning_rate_init),
                Solver::Lbfgs => unreachable!("dispatched in train()"),
            }
            loss_sum += loss;
            batches += 1;
        }
        epoch_loss = loss_sum / batches.max(1) as f64;
        schedule.observe_epoch(epoch_loss);

        // Early-stopping / convergence monitor: validation loss when early
        // stopping is on, training loss otherwise.
        let monitor = match (&x_val, &t_val) {
            (Some(xv), Some(tv)) => {
                net.set_params_flat(&flat);
                let (vloss, _) = net.loss_grad(xv, tv, 0.0);
                cost_units += net.cost_per_instance() * xv.rows() as u64;
                vloss
            }
            _ => epoch_loss,
        };
        if monitor < best_monitor - params.tol {
            best_monitor = monitor;
            no_change = 0;
        } else {
            no_change += 1;
            if no_change >= params.n_iter_no_change {
                stopped_early = true;
                break;
            }
        }
        if !epoch_loss.is_finite() {
            // Diverged (e.g. lr too high) — stop; the evaluator scores
            // diverged fits as failed folds.
            diverged = true;
            break;
        }
    }
    net.set_params_flat(&flat);
    let state = match params.solver {
        Solver::Sgd => SolverState::Sgd {
            velocity: sgd.velocity().to_vec(),
        },
        Solver::Adam => {
            let (m, v, t) = adam.moments();
            SolverState::Adam {
                m: m.to_vec(),
                v: v.to_vec(),
                t,
            }
        }
        Solver::Lbfgs => unreachable!("dispatched in train_continuing()"),
    };
    (
        TrainReport {
            epochs,
            final_loss: epoch_loss,
            cost_units,
            stopped_early,
            diverged,
        },
        state,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::loss::{one_hot, OutputLoss};
    use crate::schedule::LearningRate;

    /// Tiny two-blob classification problem the net must solve.
    fn xor_ish() -> (Matrix, Matrix) {
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, 0.1],
            &[1.0, 1.0],
            &[0.9, 0.9],
            &[0.0, 1.0],
            &[0.1, 0.9],
            &[1.0, 0.0],
            &[0.9, 0.1],
        ]);
        let y = one_hot(&[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0], 2);
        (x, y)
    }

    fn accuracy_of(net: &Network, x: &Matrix, labels: &[usize]) -> f64 {
        let p = net.predict_raw(x);
        let mut correct = 0;
        for (r, &want) in labels.iter().enumerate() {
            let row = p.row(r);
            let pred = if row[1] > row[0] { 1 } else { 0 };
            if pred == want {
                correct += 1;
            }
        }
        correct as f64 / labels.len() as f64
    }

    #[test]
    fn adam_learns_xor() {
        let (x, t) = xor_ish();
        let mut net = Network::new(
            vec![2, 16, 2],
            Activation::Tanh,
            OutputLoss::SoftmaxCrossEntropy,
            1,
        );
        let params = MlpParams {
            solver: Solver::Adam,
            learning_rate_init: 0.05,
            batch_size: 8,
            max_iter: 300,
            n_iter_no_change: 300,
            ..Default::default()
        };
        let report = train(&mut net, &x, &t, &params);
        assert!(report.final_loss < 0.1, "loss {}", report.final_loss);
        assert_eq!(accuracy_of(&net, &x, &[0, 0, 0, 0, 1, 1, 1, 1]), 1.0);
    }

    #[test]
    fn sgd_with_momentum_learns_xor() {
        let (x, t) = xor_ish();
        let mut net = Network::new(
            vec![2, 16, 2],
            Activation::Tanh,
            OutputLoss::SoftmaxCrossEntropy,
            2,
        );
        let params = MlpParams {
            solver: Solver::Sgd,
            learning_rate_init: 0.5,
            momentum: 0.9,
            batch_size: 8,
            max_iter: 500,
            n_iter_no_change: 500,
            learning_rate: LearningRate::Constant,
            ..Default::default()
        };
        let report = train(&mut net, &x, &t, &params);
        assert!(report.final_loss < 0.2, "loss {}", report.final_loss);
    }

    #[test]
    fn lbfgs_learns_xor_fast() {
        let (x, t) = xor_ish();
        let mut net = Network::new(
            vec![2, 16, 2],
            Activation::Tanh,
            OutputLoss::SoftmaxCrossEntropy,
            3,
        );
        let params = MlpParams {
            solver: Solver::Lbfgs,
            max_iter: 200,
            tol: 1e-8,
            ..Default::default()
        };
        let report = train(&mut net, &x, &t, &params);
        assert!(report.final_loss < 0.1, "loss {}", report.final_loss);
        assert!(report.cost_units > 0);
    }

    #[test]
    fn early_stopping_halts_before_max_iter() {
        let (x, t) = xor_ish();
        let mut net = Network::new(
            vec![2, 8, 2],
            Activation::Tanh,
            OutputLoss::SoftmaxCrossEntropy,
            4,
        );
        let params = MlpParams {
            solver: Solver::Adam,
            learning_rate_init: 0.05,
            max_iter: 5000,
            early_stopping: true,
            validation_fraction: 0.25,
            n_iter_no_change: 3,
            ..Default::default()
        };
        let report = train(&mut net, &x, &t, &params);
        assert!(report.epochs < 5000, "never stopped: {}", report.epochs);
        assert!(report.stopped_early);
    }

    #[test]
    fn cost_units_scale_with_epochs() {
        let (x, t) = xor_ish();
        let make = |max_iter| {
            let mut net = Network::new(
                vec![2, 8, 2],
                Activation::Relu,
                OutputLoss::SoftmaxCrossEntropy,
                5,
            );
            let params = MlpParams {
                solver: Solver::Adam,
                max_iter,
                n_iter_no_change: usize::MAX,
                tol: 0.0,
                ..Default::default()
            };
            train(&mut net, &x, &t, &params).cost_units
        };
        let c1 = make(1);
        let c10 = make(10);
        assert_eq!(c10, c1 * 10);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (x, t) = xor_ish();
        let run = |seed| {
            let mut net = Network::new(
                vec![2, 8, 2],
                Activation::Tanh,
                OutputLoss::SoftmaxCrossEntropy,
                seed,
            );
            let params = MlpParams {
                solver: Solver::Adam,
                max_iter: 20,
                seed,
                ..Default::default()
            };
            train(&mut net, &x, &t, &params);
            net.params_flat()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn absurd_learning_rate_reports_divergence() {
        let (x, t) = xor_ish();
        let mut net = Network::new(
            vec![2, 16, 2],
            Activation::Relu,
            OutputLoss::SoftmaxCrossEntropy,
            6,
        );
        let params = MlpParams {
            solver: Solver::Sgd,
            learning_rate: LearningRate::Constant,
            learning_rate_init: 1.0e12,
            momentum: 0.0,
            batch_size: 8,
            max_iter: 50,
            n_iter_no_change: 50,
            ..Default::default()
        };
        let report = train(&mut net, &x, &t, &params);
        assert!(report.diverged, "loss {}", report.final_loss);
        // The guard stops before a non-finite gradient is applied, so the
        // surviving weights are the last finite iterate.
        assert!(net.params_flat().iter().all(|w| w.is_finite()));
    }

    #[test]
    fn warm_resume_continues_from_prior_state() {
        let (x, t) = xor_ish();
        let params = MlpParams {
            solver: Solver::Adam,
            learning_rate_init: 0.05,
            batch_size: 8,
            max_iter: 15,
            n_iter_no_change: usize::MAX,
            tol: 0.0,
            ..Default::default()
        };
        let mut net = Network::new(
            vec![2, 16, 2],
            Activation::Tanh,
            OutputLoss::SoftmaxCrossEntropy,
            7,
        );
        let (first, state) = train_continuing(&mut net, &x, &t, &params, None);
        let loss_after_first = first.final_loss;
        // Continue for another 15 epochs from the exported solver state: the
        // warm run must keep improving on the snapshot it started from.
        let (second, _) = train_continuing(&mut net, &x, &t, &params, Some(&state));
        assert!(
            second.final_loss < loss_after_first,
            "warm continuation did not improve: {} -> {}",
            loss_after_first,
            second.final_loss
        );
        assert!(matches!(state, SolverState::Adam { .. }));
    }

    #[test]
    fn warm_resume_is_deterministic() {
        let (x, t) = xor_ish();
        let params = MlpParams {
            solver: Solver::Sgd,
            learning_rate_init: 0.1,
            momentum: 0.9,
            batch_size: 8,
            max_iter: 10,
            n_iter_no_change: usize::MAX,
            tol: 0.0,
            learning_rate: LearningRate::Constant,
            ..Default::default()
        };
        let run = || {
            let mut net = Network::new(
                vec![2, 8, 2],
                Activation::Tanh,
                OutputLoss::SoftmaxCrossEntropy,
                8,
            );
            let (_, state) = train_continuing(&mut net, &x, &t, &params, None);
            let (_, _) = train_continuing(&mut net, &x, &t, &params, Some(&state));
            net.params_flat()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mismatched_resume_state_is_ignored() {
        let (x, t) = xor_ish();
        let params = MlpParams {
            solver: Solver::Adam,
            max_iter: 3,
            ..Default::default()
        };
        let mut net = Network::new(
            vec![2, 8, 2],
            Activation::Tanh,
            OutputLoss::SoftmaxCrossEntropy,
            9,
        );
        // Wrong buffer length: must train cold rather than panic.
        let bogus = SolverState::Adam {
            m: vec![0.0; 3],
            v: vec![0.0; 3],
            t: 5,
        };
        let (report, _) = train_continuing(&mut net, &x, &t, &params, Some(&bogus));
        assert_eq!(report.epochs, 3);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let mut net = Network::new(
            vec![2, 4, 2],
            Activation::Relu,
            OutputLoss::SoftmaxCrossEntropy,
            0,
        );
        let params = MlpParams::default();
        train(
            &mut net,
            &Matrix::zeros(0, 2),
            &Matrix::zeros(0, 2),
            &params,
        );
    }
}
