//! Serializable training state for warm-start continuation across budgets.
//!
//! A bandit rung-`i+1` evaluation repeats all the work of rung `i` on a
//! superset of the data; snapshotting the fitted weights (plus the solver's
//! internal buffers) lets the next rung *continue* training instead of
//! refitting from epoch 0. The snapshot is deliberately minimal:
//!
//! * **Weights** always carry over — they are the whole point.
//! * **SGD momentum** and **Adam moments + step count** carry over, so the
//!   first warm batch behaves like the next batch of one long run rather
//!   than a cold restart of the optimizer.
//! * **L-BFGS history does not carry over.** Its curvature pairs `(s, y)`
//!   approximate the Hessian of the *previous* objective (a smaller data
//!   subset); reusing them against the new objective can produce ascent
//!   directions, so a warm L-BFGS fit restarts its memory from the warm
//!   weights — the same thing scipy does on a fresh `minimize` call with
//!   `x0` set. [`SolverState::Lbfgs`] is therefore an empty marker.
//! * The **learning-rate schedule and early-stopping monitor restart**:
//!   both are cheap to rebuild and their state is relative to the old
//!   objective's loss scale.

use serde::{Deserialize, Serialize};

/// Solver-internal state carried across a warm restart.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SolverState {
    /// SGD momentum buffer.
    Sgd {
        /// Velocity vector, one entry per flat parameter.
        velocity: Vec<f64>,
    },
    /// Adam moment estimates and bias-correction step count.
    Adam {
        /// First-moment (mean) buffer.
        m: Vec<f64>,
        /// Second-moment (uncentered variance) buffer.
        v: Vec<f64>,
        /// Steps taken so far (drives bias correction).
        t: u64,
    },
    /// L-BFGS carries no state: its curvature history is specific to the
    /// objective it was built against and is reset on continuation (see the
    /// module docs).
    Lbfgs,
}

impl SolverState {
    /// Approximate serialized size, for cache accounting.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            SolverState::Sgd { velocity } => 8 * velocity.len() as u64,
            SolverState::Adam { m, v, .. } => 8 * (m.len() + v.len()) as u64 + 8,
            SolverState::Lbfgs => 0,
        }
    }
}

/// A complete resumable snapshot of one fitted fold model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FitState {
    /// Layer widths `[input, hidden..., output]` of the snapshotted network.
    pub sizes: Vec<usize>,
    /// Flat parameter vector (see `Network::params_flat`).
    pub weights: Vec<f64>,
    /// Solver buffers to resume from.
    pub solver: SolverState,
    /// Total epochs trained into these weights across all continuations.
    pub epochs: usize,
}

impl FitState {
    /// Approximate in-memory/serialized size, for cache metrics.
    pub fn approx_bytes(&self) -> u64 {
        8 * (self.sizes.len() + self.weights.len()) as u64 + self.solver.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_equality_covers_all_fields() {
        let state = FitState {
            sizes: vec![4, 8, 2],
            weights: vec![0.25, -1.5, 3.125],
            solver: SolverState::Adam {
                m: vec![0.1, 0.2],
                v: vec![0.3, 0.4],
                t: 17,
            },
            epochs: 9,
        };
        let mut other = state.clone();
        assert_eq!(other, state);
        other.epochs += 1;
        assert_ne!(other, state);
    }

    #[test]
    fn approx_bytes_counts_buffers() {
        let state = FitState {
            sizes: vec![2, 1],
            weights: vec![0.0; 3],
            solver: SolverState::Sgd {
                velocity: vec![0.0; 3],
            },
            epochs: 1,
        };
        assert_eq!(state.approx_bytes(), 8 * (2 + 3) + 8 * 3);
        assert_eq!(SolverState::Lbfgs.approx_bytes(), 0);
    }
}
