//! Multi-layer perceptron mirroring scikit-learn's `MLPClassifier` /
//! `MLPRegressor` over the paper's Table III hyperparameters.
//!
//! * [`params`] — the hyperparameter struct ([`MlpParams`]) and solver enum.
//! * [`network`] — the feed-forward network, backprop and flat-parameter
//!   packing.
//! * [`train`] — the solver-dispatching training loop (SGD / Adam / L-BFGS,
//!   schedules, early stopping, cost accounting).
//! * [`snapshot`] — resumable training state ([`FitState`]) for warm-start
//!   continuation across budget rungs.
//! * [`classifier`] / [`regressor`] — the public estimators.

pub mod classifier;
pub mod network;
pub mod params;
pub mod regressor;
pub mod snapshot;
pub mod train;

pub use classifier::MlpClassifier;
pub use params::{MlpParams, Solver};
pub use regressor::MlpRegressor;
pub use snapshot::{FitState, SolverState};
