//! The feed-forward network: forward pass, backprop, flat-parameter packing.

use crate::activation::Activation;
use crate::loss::OutputLoss;
use hpo_data::matrix::Matrix;
use hpo_data::rng::rng_from_seed;
use rand::Rng;

/// A fully-connected feed-forward network.
#[derive(Clone, Debug)]
pub struct Network {
    /// Layer widths `[input, hidden..., output]`.
    sizes: Vec<usize>,
    /// Weight matrices, `sizes[l] x sizes[l+1]` each.
    weights: Vec<Matrix>,
    /// Bias vectors, one per non-input layer.
    biases: Vec<Vec<f64>>,
    /// Hidden activation.
    activation: Activation,
    /// Output transform + loss pair.
    output: OutputLoss,
}

impl Network {
    /// Builds a network with Glorot-uniform weights and zero biases.
    ///
    /// # Panics
    /// Panics when fewer than two layer sizes are given or any size is zero.
    pub fn new(sizes: Vec<usize>, activation: Activation, output: OutputLoss, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = rng_from_seed(seed);
        let mut weights = Vec::with_capacity(sizes.len() - 1);
        let mut biases = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
            let mut m = Matrix::zeros(fan_in, fan_out);
            for v in m.as_mut_slice() {
                *v = rng.gen_range(-bound..bound);
            }
            weights.push(m);
            biases.push(vec![0.0; fan_out]);
        }
        Network {
            sizes,
            weights,
            biases,
            activation,
            output,
        }
    }

    /// Layer widths.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of trainable parameters.
    pub fn n_params(&self) -> usize {
        self.sizes.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Multiply-accumulate operations for one instance's forward pass —
    /// the unit of the deterministic cost model.
    pub fn cost_per_instance(&self) -> u64 {
        self.sizes.windows(2).map(|w| (w[0] * w[1]) as u64).sum()
    }

    /// Forward pass returning the activations of every layer
    /// (`activations[0]` is the input, the last entry is the transformed
    /// output).
    pub fn forward(&self, x: &Matrix) -> Vec<Matrix> {
        assert_eq!(x.cols(), self.sizes[0], "input width mismatch");
        let n_layers = self.weights.len();
        let mut activations = Vec::with_capacity(n_layers + 1);
        activations.push(x.clone());
        for l in 0..n_layers {
            let mut z = activations[l].matmul(&self.weights[l]);
            z.add_row_vector(&self.biases[l]);
            if l < n_layers - 1 {
                self.activation.apply_slice(z.as_mut_slice());
            } else {
                self.output.transform(&mut z);
            }
            activations.push(z);
        }
        activations
    }

    /// Transformed output for a batch (probabilities for classification,
    /// raw values for regression).
    pub fn predict_raw(&self, x: &Matrix) -> Matrix {
        self.forward(x).pop().expect("forward returns >= 2 entries")
    }

    /// Loss and flat gradient for a batch, including the L2 penalty
    /// `alpha/(2n) · Σ‖W‖²` on weights (biases unpenalized, as in
    /// scikit-learn).
    pub fn loss_grad(&self, x: &Matrix, targets: &Matrix, alpha: f64) -> (f64, Vec<f64>) {
        let n = x.rows().max(1) as f64;
        let activations = self.forward(x);
        let prediction = activations.last().expect("non-empty activations");
        let mut loss = self.output.loss(prediction, targets);
        for w in &self.weights {
            loss += alpha / (2.0 * n) * w.frob_sq();
        }

        let n_layers = self.weights.len();
        let mut grad_w: Vec<Matrix> = Vec::with_capacity(n_layers);
        let mut grad_b: Vec<Vec<f64>> = Vec::with_capacity(n_layers);
        // Output delta already includes the 1/n factor.
        let mut delta = self.output.delta(prediction, targets);
        for l in (0..n_layers).rev() {
            let mut gw = activations[l].t_matmul(&delta);
            gw.axpy(alpha / n, &self.weights[l]);
            let gb = delta.col_sums();
            grad_w.push(gw);
            grad_b.push(gb);
            if l > 0 {
                let mut prev_delta = delta.matmul_t(&self.weights[l]);
                // Multiply by the activation derivative at hidden layer l;
                // the matrices share a shape, so the fused kernel runs over
                // the flat buffers in one pass.
                self.activation
                    .derivative_mul_slice(prev_delta.as_mut_slice(), activations[l].as_slice());
                delta = prev_delta;
            }
        }
        grad_w.reverse();
        grad_b.reverse();

        let mut flat = Vec::with_capacity(self.n_params());
        for (gw, gb) in grad_w.iter().zip(&grad_b) {
            flat.extend_from_slice(gw.as_slice());
            flat.extend_from_slice(gb);
        }
        (loss, flat)
    }

    /// Copies all parameters into one flat vector (weights then biases, per
    /// layer in order — the same layout `loss_grad` produces).
    pub fn params_flat(&self) -> Vec<f64> {
        let mut flat = Vec::with_capacity(self.n_params());
        for (w, b) in self.weights.iter().zip(&self.biases) {
            flat.extend_from_slice(w.as_slice());
            flat.extend_from_slice(b);
        }
        flat
    }

    /// Restores all parameters from a flat vector.
    ///
    /// # Panics
    /// Panics when the vector length differs from [`Network::n_params`].
    pub fn set_params_flat(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.n_params(), "parameter count mismatch");
        let mut off = 0;
        for (w, b) in self.weights.iter_mut().zip(&mut self.biases) {
            let wlen = w.rows() * w.cols();
            w.as_mut_slice().copy_from_slice(&flat[off..off + wlen]);
            off += wlen;
            let blen = b.len();
            b.copy_from_slice(&flat[off..off + blen]);
            off += blen;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::one_hot;

    fn tiny_net(seed: u64) -> Network {
        Network::new(
            vec![3, 4, 2],
            Activation::Tanh,
            OutputLoss::SoftmaxCrossEntropy,
            seed,
        )
    }

    #[test]
    fn n_params_counts_weights_and_biases() {
        let net = tiny_net(0);
        assert_eq!(net.n_params(), 3 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn params_roundtrip() {
        let mut net = tiny_net(1);
        let flat = net.params_flat();
        let mut changed = flat.clone();
        changed[0] += 1.0;
        net.set_params_flat(&changed);
        assert_eq!(net.params_flat(), changed);
        net.set_params_flat(&flat);
        assert_eq!(net.params_flat(), flat);
    }

    #[test]
    fn forward_output_shape_and_probabilities() {
        let net = tiny_net(2);
        let x = Matrix::zeros(5, 3);
        let out = net.predict_raw(&x);
        assert_eq!(out.shape(), (5, 2));
        for row in out.iter_rows() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        // The canonical backprop correctness check.
        let mut net = Network::new(
            vec![2, 3, 2],
            Activation::Logistic,
            OutputLoss::SoftmaxCrossEntropy,
            3,
        );
        let x = Matrix::from_rows(&[&[0.5, -1.0], &[1.5, 0.3], &[-0.7, 0.9]]);
        let t = one_hot(&[0.0, 1.0, 0.0], 2);
        let alpha = 0.01;

        let (_, grad) = net.loss_grad(&x, &t, alpha);
        let flat = net.params_flat();
        let h = 1e-6;
        for i in (0..flat.len()).step_by(3) {
            let mut plus = flat.clone();
            plus[i] += h;
            net.set_params_flat(&plus);
            let (lp, _) = net.loss_grad(&x, &t, alpha);
            let mut minus = flat.clone();
            minus[i] -= h;
            net.set_params_flat(&minus);
            let (lm, _) = net.loss_grad(&x, &t, alpha);
            net.set_params_flat(&flat);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grad[i]).abs() < 1e-5,
                "param {i}: fd={fd} backprop={}",
                grad[i]
            );
        }
    }

    #[test]
    fn gradient_matches_finite_differences_regression_relu() {
        let mut net = Network::new(vec![2, 4, 1], Activation::Relu, OutputLoss::SquaredError, 4);
        let x = Matrix::from_rows(&[&[0.5, -1.0], &[1.5, 0.3]]);
        let t = Matrix::from_rows(&[&[1.0], &[-0.5]]);
        let (_, grad) = net.loss_grad(&x, &t, 0.0);
        let flat = net.params_flat();
        let h = 1e-6;
        for i in (0..flat.len()).step_by(2) {
            let mut plus = flat.clone();
            plus[i] += h;
            net.set_params_flat(&plus);
            let (lp, _) = net.loss_grad(&x, &t, 0.0);
            let mut minus = flat.clone();
            minus[i] -= h;
            net.set_params_flat(&minus);
            let (lm, _) = net.loss_grad(&x, &t, 0.0);
            net.set_params_flat(&flat);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grad[i]).abs() < 1e-5,
                "param {i}: fd={fd} backprop={}",
                grad[i]
            );
        }
    }

    #[test]
    fn deterministic_init_per_seed() {
        let a = tiny_net(7).params_flat();
        let b = tiny_net(7).params_flat();
        let c = tiny_net(8).params_flat();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cost_per_instance_counts_macs() {
        let net = tiny_net(0);
        assert_eq!(net.cost_per_instance(), (3 * 4 + 4 * 2) as u64);
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn forward_rejects_wrong_width() {
        tiny_net(0).predict_raw(&Matrix::zeros(2, 5));
    }
}
