//! MLP hyperparameters (paper Table III).

use crate::activation::Activation;
use crate::schedule::LearningRate;
use serde::{Deserialize, Serialize};

/// Weight optimizer (paper Table III: lbfgs/sgd/adam).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Solver {
    /// Full-batch L-BFGS.
    Lbfgs,
    /// Mini-batch SGD with momentum and the learning-rate schedule.
    Sgd,
    /// Mini-batch Adam (schedule ignored, as in scikit-learn).
    Adam,
}

impl Solver {
    /// All solvers in the paper's search space.
    pub const SEARCH_SPACE: [Solver; 3] = [Solver::Lbfgs, Solver::Sgd, Solver::Adam];

    /// The scikit-learn parameter string.
    pub fn name(&self) -> &'static str {
        match self {
            Solver::Lbfgs => "lbfgs",
            Solver::Sgd => "sgd",
            Solver::Adam => "adam",
        }
    }

    /// Parses a scikit-learn-style solver name.
    pub fn from_name(name: &str) -> Option<Solver> {
        match name {
            "lbfgs" => Some(Solver::Lbfgs),
            "sgd" => Some(Solver::Sgd),
            "adam" => Some(Solver::Adam),
            _ => None,
        }
    }
}

/// Hyperparameters of the MLP, covering all eight entries of the paper's
/// search space plus the scikit-learn housekeeping parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MlpParams {
    /// Sizes of the hidden layers, e.g. `[40, 40]`.
    pub hidden_layer_sizes: Vec<usize>,
    /// Hidden activation.
    pub activation: Activation,
    /// Weight optimizer.
    pub solver: Solver,
    /// Initial learning rate (`learning_rate_init`).
    pub learning_rate_init: f64,
    /// Mini-batch size (`batch_size`). Capped at the sample count at fit time.
    pub batch_size: usize,
    /// Learning-rate schedule (`learning_rate`; SGD only).
    pub learning_rate: LearningRate,
    /// Momentum for SGD.
    pub momentum: f64,
    /// Whether to hold out validation data and stop early.
    pub early_stopping: bool,
    /// L2 penalty (`alpha`).
    pub alpha: f64,
    /// Maximum epochs (SGD/Adam) or iterations (L-BFGS).
    pub max_iter: usize,
    /// Fraction held out when `early_stopping` is on.
    pub validation_fraction: f64,
    /// Epochs without `tol` improvement before stopping.
    pub n_iter_no_change: usize,
    /// Convergence tolerance.
    pub tol: f64,
    /// Seed for weight initialization and batch shuffling.
    pub seed: u64,
}

impl Default for MlpParams {
    /// scikit-learn defaults, except `max_iter` (40 instead of 200) so that
    /// HPO experiments evaluating hundreds of configurations stay
    /// laptop-scale; experiments can always raise it.
    fn default() -> Self {
        MlpParams {
            hidden_layer_sizes: vec![100],
            activation: Activation::Relu,
            solver: Solver::Adam,
            learning_rate_init: 0.001,
            batch_size: 200,
            learning_rate: LearningRate::Constant,
            momentum: 0.9,
            early_stopping: false,
            alpha: 1e-4,
            max_iter: 40,
            validation_fraction: 0.1,
            n_iter_no_change: 5,
            tol: 1e-4,
            seed: 0,
        }
    }
}

impl MlpParams {
    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on non-positive learning rate, batch size, or max_iter, or on
    /// an empty hidden-layer list.
    pub fn validate(&self) {
        assert!(
            !self.hidden_layer_sizes.is_empty() && self.hidden_layer_sizes.iter().all(|&h| h > 0),
            "hidden_layer_sizes must be non-empty and positive"
        );
        assert!(
            self.learning_rate_init > 0.0,
            "learning_rate_init must be positive"
        );
        assert!(self.batch_size > 0, "batch_size must be positive");
        assert!(self.max_iter > 0, "max_iter must be positive");
        assert!(
            (0.0..1.0).contains(&self.validation_fraction),
            "validation_fraction must be in [0,1)"
        );
        assert!(
            (0.0..1.0).contains(&self.momentum),
            "momentum must be in [0,1)"
        );
    }

    /// A compact human-readable identifier, e.g.
    /// `h=[40,40] act=relu sol=adam lr=0.01 bs=64 sched=constant mom=0.9 es=false`.
    pub fn describe(&self) -> String {
        format!(
            "h={:?} act={} sol={} lr={} bs={} sched={} mom={} es={}",
            self.hidden_layer_sizes,
            self.activation.name(),
            self.solver.name(),
            self.learning_rate_init,
            self.batch_size,
            self.learning_rate.name(),
            self.momentum,
            self.early_stopping
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        MlpParams::default().validate();
    }

    #[test]
    #[should_panic(expected = "hidden_layer_sizes")]
    fn empty_hidden_layers_rejected() {
        MlpParams {
            hidden_layer_sizes: vec![],
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "learning_rate_init")]
    fn zero_learning_rate_rejected() {
        MlpParams {
            learning_rate_init: 0.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn solver_name_roundtrip() {
        for s in Solver::SEARCH_SPACE {
            assert_eq!(Solver::from_name(s.name()), Some(s));
        }
        assert_eq!(Solver::from_name("newton"), None);
    }

    #[test]
    fn describe_mentions_key_fields() {
        let d = MlpParams::default().describe();
        assert!(d.contains("adam") && d.contains("relu") && d.contains("h=[100]"));
    }
}
