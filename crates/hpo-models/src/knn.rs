//! k-nearest-neighbour classifier.
//!
//! A lazy baseline used by the examples and tests as a sanity reference
//! against the tuned MLP (the paper's experiments tune MLPs; kNN gives the
//! "no training" floor a practitioner would compare with).

use crate::estimator::{Classifier, Estimator, TrainReport};
use hpo_data::dataset::{Dataset, Task};
use hpo_data::error::DataError;
use hpo_data::matrix::Matrix;

/// k-nearest-neighbour majority-vote classifier (exact, brute force).
#[derive(Clone, Debug)]
pub struct KnnClassifier {
    /// Number of neighbours `k`.
    pub k: usize,
    train_x: Option<Matrix>,
    train_y: Vec<f64>,
    n_classes: usize,
}

impl KnnClassifier {
    /// Creates an unfitted classifier with the given `k`.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        KnnClassifier {
            k,
            train_x: None,
            train_y: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Estimator for KnnClassifier {
    fn fit(&mut self, data: &Dataset) -> Result<TrainReport, DataError> {
        let k_classes = match data.task() {
            Task::Regression => {
                return Err(DataError::invalid(
                    "data",
                    "KnnClassifier requires a classification dataset",
                ))
            }
            task => task.n_classes().expect("classification has classes"),
        };
        if data.n_instances() == 0 {
            return Err(DataError::invalid("data", "empty dataset"));
        }
        self.train_x = Some(data.x().clone());
        self.train_y = data.y().to_vec();
        self.n_classes = k_classes;
        Ok(TrainReport {
            epochs: 0,
            final_loss: 0.0,
            // "Training" is memorization; cost is the copy.
            cost_units: (data.n_instances() * data.n_features()) as u64,
            stopped_early: false,
            diverged: false,
        })
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let p = self.predict_proba(x);
        (0..p.rows())
            .map(|r| {
                let row = p.row(r);
                let mut best = 0;
                for (c, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = c;
                    }
                }
                best as f64
            })
            .collect()
    }
}

impl Classifier for KnnClassifier {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let train = self
            .train_x
            .as_ref()
            .expect("KnnClassifier::predict called before fit");
        let k = self.k.min(train.rows());
        let mut proba = Matrix::zeros(x.rows(), self.n_classes);
        let mut dists: Vec<(f64, usize)> = Vec::with_capacity(train.rows());
        for (r, query) in x.iter_rows().enumerate() {
            dists.clear();
            for (j, row) in train.iter_rows().enumerate() {
                dists.push((Matrix::dist_sq(query, row), j));
            }
            dists.select_nth_unstable_by(k - 1, |a, b| {
                a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
            });
            let inv_k = 1.0 / k as f64;
            for &(_, j) in &dists[..k] {
                proba[(r, self.train_y[j] as usize)] += inv_k;
            }
        }
        proba
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::synth::{make_classification, ClassificationSpec};

    #[test]
    fn classifies_clean_blobs_perfectly() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 200,
                n_features: 4,
                n_informative: 4,
                n_classes: 2,
                n_blobs: 2,
                label_purity: 1.0,
                label_noise: 0.0,
                blob_spread: 0.2,
                ..Default::default()
            },
            1,
        );
        let mut knn = KnnClassifier::new(3);
        knn.fit(&data).unwrap();
        let preds = knn.predict(data.x());
        let acc = preds.iter().zip(data.y()).filter(|(a, b)| a == b).count() as f64 / 200.0;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn k_one_memorizes_training_data() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 60,
                label_noise: 0.3, // even noisy labels are memorized exactly
                ..Default::default()
            },
            2,
        );
        let mut knn = KnnClassifier::new(1);
        knn.fit(&data).unwrap();
        assert_eq!(knn.predict(data.x()), data.y());
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 50,
                n_classes: 3,
                n_blobs: 3,
                ..Default::default()
            },
            3,
        );
        let mut knn = KnnClassifier::new(5);
        knn.fit(&data).unwrap();
        let p = knn.predict_proba(data.x());
        for row in p.iter_rows() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 10,
                ..Default::default()
            },
            4,
        );
        let mut knn = KnnClassifier::new(100);
        knn.fit(&data).unwrap();
        let preds = knn.predict(data.x());
        assert_eq!(preds.len(), 10);
    }

    #[test]
    fn rejects_regression() {
        use hpo_data::dataset::Dataset;
        let x = Matrix::zeros(4, 2);
        let d = Dataset::new(x, vec![0.5; 4], Task::Regression).unwrap();
        assert!(KnnClassifier::new(3).fit(&d).is_err());
    }
}
