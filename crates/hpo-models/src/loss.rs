//! Output layers and losses: softmax + cross-entropy for classification,
//! identity + squared error for regression.
//!
//! Both pairs share the convenient property that the output-layer error term
//! is simply `prediction − target`, which `mlp::Network::backward` relies on.
//!
//! The loss sums use the fixed 4-lane accumulator split from
//! [`hpo_data::simd`] *unconditionally* (with `simd` on or off), so training
//! trajectories never depend on the feature flag; they are ULP-bounded — not
//! bit-equal — against the sequential [`OutputLoss::loss_reference`]
//! (DESIGN.md §5.12).

use hpo_data::matrix::Matrix;
use hpo_data::simd::{self, F64x4, LANES};
use hpo_data::simd_kernel;

simd_kernel! {
    /// `Σ t·ln(max(p, 1e-12))` over flat slices, restricted to `t > 0`, with
    /// the fixed 4-lane accumulator split (`ln` stays scalar; only the
    /// accumulation is laned).
    fn cross_entropy_sum(p: &[f64], t: &[f64]) -> f64 {
        let mut acc = [0.0f64; 4];
        let mut pc = p.chunks_exact(LANES);
        let mut tc = t.chunks_exact(LANES);
        for (p4, t4) in (&mut pc).zip(&mut tc) {
            for l in 0..LANES {
                if t4[l] > 0.0 {
                    acc[l] += t4[l] * p4[l].max(1e-12).ln();
                }
            }
        }
        for (l, (&pv, &tv)) in pc.remainder().iter().zip(tc.remainder()).enumerate() {
            if tv > 0.0 {
                acc[l] += tv * pv.max(1e-12).ln();
            }
        }
        F64x4(acc).hsum_ordered()
    }
}

/// The output transform + loss pair of a network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputLoss {
    /// Softmax outputs with categorical cross-entropy (classification).
    SoftmaxCrossEntropy,
    /// Identity outputs with mean squared error (regression).
    SquaredError,
}

impl OutputLoss {
    /// Applies the output transform to raw scores in place (row-wise).
    pub fn transform(&self, z: &mut Matrix) {
        match self {
            OutputLoss::SoftmaxCrossEntropy => {
                for r in 0..z.rows() {
                    softmax_row(z.row_mut(r));
                }
            }
            OutputLoss::SquaredError => {}
        }
    }

    /// Mean loss of transformed predictions `p` against targets `t`.
    ///
    /// For cross-entropy, `t` is one-hot; for squared error the factor is
    /// `1/2` per element so the gradient is exactly `p − t`. Accumulates with
    /// the fixed 4-lane split — ULP-bounded against
    /// [`OutputLoss::loss_reference`].
    pub fn loss(&self, p: &Matrix, t: &Matrix) -> f64 {
        assert_eq!(p.shape(), t.shape(), "prediction/target shape mismatch");
        let n = p.rows().max(1) as f64;
        match self {
            OutputLoss::SoftmaxCrossEntropy => -cross_entropy_sum(p.as_slice(), t.as_slice()) / n,
            OutputLoss::SquaredError => 0.5 * simd::dist_sq(p.as_slice(), t.as_slice()) / n,
        }
    }

    /// Sequential scalar reference for [`OutputLoss::loss`].
    ///
    /// Kept as the correctness oracle for the ULP-bounded property tests and
    /// as the scalar baseline in `bench_hpo`'s loss micro-bench.
    pub fn loss_reference(&self, p: &Matrix, t: &Matrix) -> f64 {
        assert_eq!(p.shape(), t.shape(), "prediction/target shape mismatch");
        let n = p.rows().max(1) as f64;
        match self {
            OutputLoss::SoftmaxCrossEntropy => {
                let mut total = 0.0;
                for (pr, tr) in p.iter_rows().zip(t.iter_rows()) {
                    for (&pv, &tv) in pr.iter().zip(tr) {
                        if tv > 0.0 {
                            total -= tv * pv.max(1e-12).ln();
                        }
                    }
                }
                total / n
            }
            OutputLoss::SquaredError => {
                let mut total = 0.0;
                for (pr, tr) in p.iter_rows().zip(t.iter_rows()) {
                    for (&pv, &tv) in pr.iter().zip(tr) {
                        let d = pv - tv;
                        total += 0.5 * d * d;
                    }
                }
                total / n
            }
        }
    }

    /// Output-layer delta `(p − t) / n`, shared by both pairs.
    pub fn delta(&self, p: &Matrix, t: &Matrix) -> Matrix {
        assert_eq!(p.shape(), t.shape(), "prediction/target shape mismatch");
        let n = p.rows().max(1) as f64;
        let mut d = p.clone();
        d.axpy(-1.0, t);
        d.scale_inplace(1.0 / n);
        d
    }
}

/// Numerically stable in-place softmax of one row.
fn softmax_row(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// One-hot encodes class labels into an `n x k` matrix.
pub fn one_hot(labels: &[f64], k: usize) -> Matrix {
    let mut t = Matrix::zeros(labels.len(), k);
    for (i, &l) in labels.iter().enumerate() {
        let c = l as usize;
        assert!(c < k, "label {l} outside 0..{k}");
        t[(i, c)] = 1.0;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut z = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        OutputLoss::SoftmaxCrossEntropy.transform(&mut z);
        for row in z.iter_rows() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&v| v > 0.0));
        }
        // larger logits get larger probability
        assert!(z[(0, 2)] > z[(0, 1)] && z[(0, 1)] > z[(0, 0)]);
    }

    #[test]
    fn softmax_is_stable_for_huge_logits() {
        let mut z = Matrix::from_rows(&[&[1000.0, 1001.0]]);
        OutputLoss::SoftmaxCrossEntropy.transform(&mut z);
        assert!(z.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_zero() {
        let p = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let t = p.clone();
        assert!(OutputLoss::SoftmaxCrossEntropy.loss(&p, &t) < 1e-9);
    }

    #[test]
    fn cross_entropy_hand_value() {
        let p = Matrix::from_rows(&[&[0.5, 0.5]]);
        let t = Matrix::from_rows(&[&[1.0, 0.0]]);
        let expect = -(0.5f64.ln());
        assert!((OutputLoss::SoftmaxCrossEntropy.loss(&p, &t) - expect).abs() < 1e-12);
    }

    #[test]
    fn squared_error_hand_value() {
        let p = Matrix::from_rows(&[&[2.0], &[4.0]]);
        let t = Matrix::from_rows(&[&[1.0], &[1.0]]);
        // (0.5*1 + 0.5*9) / 2 = 2.5
        assert!((OutputLoss::SquaredError.loss(&p, &t) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn laned_loss_is_ulp_close_to_reference() {
        // Deterministic "probabilities" and one-hot-ish targets over an odd
        // width so both the 4-lane body and the tail contribute.
        let rows = 23;
        let cols = 7;
        let mut p = Matrix::zeros(rows, cols);
        let mut t = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                p[(r, c)] = ((r * cols + c) as f64 * 0.37).sin().abs().max(1e-6);
                t[(r, c)] = if (r + c) % cols == 0 { 1.0 } else { 0.0 };
            }
        }
        for kind in [OutputLoss::SoftmaxCrossEntropy, OutputLoss::SquaredError] {
            let fast = kind.loss(&p, &t);
            let reference = kind.loss_reference(&p, &t);
            // Non-negative terms: the reassociated sum is well-conditioned,
            // so n ULPs is a generous bound (DESIGN.md §5.12).
            assert!(
                hpo_data::simd::ulp_distance(fast, reference) <= (rows * cols) as u64,
                "{kind:?}: {fast} vs {reference}"
            );
        }
    }

    #[test]
    fn delta_is_scaled_difference() {
        let p = Matrix::from_rows(&[&[0.7, 0.3], &[0.2, 0.8]]);
        let t = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let d = OutputLoss::SoftmaxCrossEntropy.delta(&p, &t);
        assert!((d[(0, 0)] - (0.7 - 1.0) / 2.0).abs() < 1e-12);
        assert!((d[(1, 1)] - (0.8 - 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn one_hot_encodes_labels() {
        let t = one_hot(&[0.0, 2.0, 1.0], 3);
        assert_eq!(t.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(t.row(1), &[0.0, 0.0, 1.0]);
        assert_eq!(t.row(2), &[0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn one_hot_rejects_out_of_range() {
        one_hot(&[3.0], 3);
    }
}
