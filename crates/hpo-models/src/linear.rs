//! Linear baselines: logistic regression and ordinary least squares via
//! gradient descent. Used by tests and as cheap sanity baselines in the
//! examples; the paper's experiments tune the MLP.

use crate::estimator::{Classifier, Estimator, Regressor, TrainReport};
use hpo_data::dataset::{Dataset, Task};
use hpo_data::error::DataError;
use hpo_data::matrix::Matrix;

/// Binary/multinomial logistic regression trained with full-batch gradient
/// descent.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    /// Learning rate for the gradient steps.
    pub learning_rate: f64,
    /// Number of gradient steps.
    pub max_iter: usize,
    /// L2 penalty.
    pub alpha: f64,
    weights: Option<Matrix>,
    bias: Vec<f64>,
    n_classes: usize,
}

impl LogisticRegression {
    /// Creates an unfitted model with sensible defaults.
    pub fn new() -> Self {
        LogisticRegression {
            learning_rate: 0.5,
            max_iter: 200,
            alpha: 1e-4,
            weights: None,
            bias: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl Estimator for LogisticRegression {
    fn fit(&mut self, data: &Dataset) -> Result<TrainReport, DataError> {
        let k = data
            .task()
            .n_classes()
            .ok_or_else(|| DataError::invalid("data", "classification dataset required"))?;
        if data.n_instances() == 0 {
            return Err(DataError::invalid("data", "empty dataset"));
        }
        let n = data.n_instances() as f64;
        let f = data.n_features();
        let mut w = Matrix::zeros(f, k);
        let mut b = vec![0.0; k];
        let targets = crate::loss::one_hot(data.y(), k);
        let mut loss = 0.0;
        for _ in 0..self.max_iter {
            // p = softmax(xW + b)
            let mut p = data.x().matmul(&w);
            p.add_row_vector(&b);
            crate::loss::OutputLoss::SoftmaxCrossEntropy.transform(&mut p);
            loss = crate::loss::OutputLoss::SoftmaxCrossEntropy.loss(&p, &targets);
            let delta = crate::loss::OutputLoss::SoftmaxCrossEntropy.delta(&p, &targets);
            let mut gw = data.x().t_matmul(&delta);
            gw.axpy(self.alpha / n, &w);
            let gb = delta.col_sums();
            gw.scale_inplace(-self.learning_rate);
            w.axpy(1.0, &gw);
            for (bv, &g) in b.iter_mut().zip(&gb) {
                *bv -= self.learning_rate * g;
            }
        }
        let cost = (3 * f * k) as u64 * data.n_instances() as u64 * self.max_iter as u64;
        self.weights = Some(w);
        self.bias = b;
        self.n_classes = k;
        Ok(TrainReport {
            epochs: self.max_iter,
            final_loss: loss,
            cost_units: cost,
            stopped_early: false,
            diverged: false,
        })
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let p = self.predict_proba(x);
        (0..p.rows())
            .map(|r| {
                let row = p.row(r);
                let mut best = 0;
                for (c, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = c;
                    }
                }
                best as f64
            })
            .collect()
    }
}

impl Classifier for LogisticRegression {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let w = self
            .weights
            .as_ref()
            .expect("LogisticRegression::predict called before fit");
        let mut p = x.matmul(w);
        p.add_row_vector(&self.bias);
        crate::loss::OutputLoss::SoftmaxCrossEntropy.transform(&mut p);
        p
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// Ordinary least squares via gradient descent.
#[derive(Clone, Debug)]
pub struct LinearRegression {
    /// Learning rate for the gradient steps.
    pub learning_rate: f64,
    /// Number of gradient steps.
    pub max_iter: usize,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LinearRegression {
    /// Creates an unfitted model with sensible defaults.
    pub fn new() -> Self {
        LinearRegression {
            learning_rate: 0.1,
            max_iter: 500,
            weights: Vec::new(),
            bias: 0.0,
            fitted: false,
        }
    }
}

impl Default for LinearRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl Estimator for LinearRegression {
    fn fit(&mut self, data: &Dataset) -> Result<TrainReport, DataError> {
        if data.task() != Task::Regression {
            return Err(DataError::invalid("data", "regression dataset required"));
        }
        if data.n_instances() == 0 {
            return Err(DataError::invalid("data", "empty dataset"));
        }
        let n = data.n_instances() as f64;
        let f = data.n_features();
        self.weights = vec![0.0; f];
        self.bias = 0.0;
        let mut loss = 0.0;
        for _ in 0..self.max_iter {
            let mut gw = vec![0.0; f];
            let mut gb = 0.0;
            loss = 0.0;
            for i in 0..data.n_instances() {
                let row = data.instance(i);
                let pred = Matrix::dot(row, &self.weights) + self.bias;
                let err = pred - data.label(i);
                loss += 0.5 * err * err / n;
                for (g, &v) in gw.iter_mut().zip(row) {
                    *g += err * v / n;
                }
                gb += err / n;
            }
            for (w, g) in self.weights.iter_mut().zip(&gw) {
                *w -= self.learning_rate * g;
            }
            self.bias -= self.learning_rate * gb;
        }
        self.fitted = true;
        Ok(TrainReport {
            epochs: self.max_iter,
            final_loss: loss,
            cost_units: (3 * f) as u64 * data.n_instances() as u64 * self.max_iter as u64,
            stopped_early: false,
            diverged: false,
        })
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.fitted, "LinearRegression::predict called before fit");
        (0..x.rows())
            .map(|r| Matrix::dot(x.row(r), &self.weights) + self.bias)
            .collect()
    }
}

impl Regressor for LinearRegression {}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::synth::{
        make_classification, make_regression, ClassificationSpec, RegressionSpec,
    };

    #[test]
    fn logistic_regression_separates_blobs() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 300,
                n_features: 4,
                n_informative: 4,
                n_classes: 2,
                n_blobs: 2,
                label_purity: 1.0,
                label_noise: 0.0,
                blob_spread: 0.25,
                ..Default::default()
            },
            1,
        );
        let mut lr = LogisticRegression::new();
        lr.fit(&data).unwrap();
        let preds = lr.predict(data.x());
        let acc = preds.iter().zip(data.y()).filter(|(a, b)| a == b).count() as f64 / 300.0;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn linear_regression_recovers_linear_signal() {
        let data = make_regression(
            &RegressionSpec {
                n_instances: 300,
                n_features: 4,
                n_informative: 4,
                noise: 0.01,
                blob_effect: 0.0,
                ..Default::default()
            },
            2,
        );
        let mut lr = LinearRegression::new();
        lr.fit(&data).unwrap();
        let preds = lr.predict(data.x());
        let mean = data.y().iter().sum::<f64>() / 300.0;
        let ss_tot: f64 = data.y().iter().map(|&v| (v - mean).powi(2)).sum();
        let ss_res: f64 = data
            .y()
            .iter()
            .zip(&preds)
            .map(|(&a, &b)| (a - b).powi(2))
            .sum();
        let r2 = 1.0 - ss_res / ss_tot;
        assert!(r2 > 0.95, "R² {r2}");
    }

    #[test]
    fn task_mismatch_is_an_error() {
        let x = Matrix::zeros(4, 2);
        let class_data = Dataset::new(
            x.clone(),
            vec![0.0, 1.0, 0.0, 1.0],
            Task::BinaryClassification,
        )
        .unwrap();
        let reg_data = Dataset::new(x, vec![0.5; 4], Task::Regression).unwrap();
        assert!(LinearRegression::new().fit(&class_data).is_err());
        assert!(LogisticRegression::new().fit(&reg_data).is_err());
    }

    #[test]
    fn logistic_proba_rows_sum_to_one() {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 50,
                n_classes: 3,
                n_blobs: 3,
                ..Default::default()
            },
            3,
        );
        let mut lr = LogisticRegression::new();
        lr.fit(&data).unwrap();
        assert_eq!(lr.n_classes(), 3);
        let p = lr.predict_proba(data.x());
        for row in p.iter_rows() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
