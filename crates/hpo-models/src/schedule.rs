//! Learning-rate schedules (paper Table III: constant/invscaling/adaptive).
//!
//! Semantics mirror scikit-learn's `MLPClassifier(learning_rate=...)`:
//!
//! * `constant` — `lr_init` throughout.
//! * `invscaling` — `lr_init / t^power_t` with `power_t = 0.5`, where `t` is
//!   the epoch counter.
//! * `adaptive` — keep `lr` while the loss improves; divide by 5 whenever
//!   two consecutive epochs fail to improve by `tol`.

use serde::{Deserialize, Serialize};

/// Learning-rate schedule kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LearningRate {
    /// Fixed at `lr_init`.
    Constant,
    /// `lr_init / t^0.5`.
    InvScaling,
    /// Divide by 5 after two consecutive non-improving epochs.
    Adaptive,
}

impl LearningRate {
    /// All schedules in the paper's search space.
    pub const SEARCH_SPACE: [LearningRate; 3] = [
        LearningRate::Constant,
        LearningRate::InvScaling,
        LearningRate::Adaptive,
    ];

    /// The scikit-learn parameter string.
    pub fn name(&self) -> &'static str {
        match self {
            LearningRate::Constant => "constant",
            LearningRate::InvScaling => "invscaling",
            LearningRate::Adaptive => "adaptive",
        }
    }

    /// Parses a scikit-learn-style schedule name.
    pub fn from_name(name: &str) -> Option<LearningRate> {
        match name {
            "constant" => Some(LearningRate::Constant),
            "invscaling" => Some(LearningRate::InvScaling),
            "adaptive" => Some(LearningRate::Adaptive),
            _ => None,
        }
    }
}

/// Stateful schedule tracker driven by the training loop.
#[derive(Clone, Debug)]
pub struct ScheduleState {
    kind: LearningRate,
    lr_init: f64,
    lr: f64,
    epoch: usize,
    bad_streak: usize,
    best_loss: f64,
    tol: f64,
}

impl ScheduleState {
    /// Creates the tracker. `tol` is the minimum loss improvement that counts
    /// as progress for the adaptive schedule.
    pub fn new(kind: LearningRate, lr_init: f64, tol: f64) -> Self {
        assert!(lr_init > 0.0, "learning rate must be positive");
        ScheduleState {
            kind,
            lr_init,
            lr: lr_init,
            epoch: 0,
            bad_streak: 0,
            best_loss: f64::INFINITY,
            tol,
        }
    }

    /// The learning rate to use for the current epoch.
    pub fn current(&self) -> f64 {
        self.lr
    }

    /// Advances to the next epoch given the loss the finished epoch achieved.
    pub fn observe_epoch(&mut self, loss: f64) {
        self.epoch += 1;
        match self.kind {
            LearningRate::Constant => {}
            LearningRate::InvScaling => {
                self.lr = self.lr_init / (self.epoch as f64 + 1.0).sqrt();
            }
            LearningRate::Adaptive => {
                if loss < self.best_loss - self.tol {
                    self.bad_streak = 0;
                } else {
                    self.bad_streak += 1;
                    if self.bad_streak >= 2 {
                        self.lr /= 5.0;
                        self.bad_streak = 0;
                    }
                }
            }
        }
        if loss < self.best_loss {
            self.best_loss = loss;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let mut s = ScheduleState::new(LearningRate::Constant, 0.1, 1e-4);
        for loss in [1.0, 1.0, 1.0, 1.0] {
            s.observe_epoch(loss);
        }
        assert_eq!(s.current(), 0.1);
    }

    #[test]
    fn invscaling_decays_with_epochs() {
        let mut s = ScheduleState::new(LearningRate::InvScaling, 0.1, 1e-4);
        let mut prev = s.current();
        for _ in 0..5 {
            s.observe_epoch(1.0);
            assert!(s.current() < prev);
            prev = s.current();
        }
        // after 5 epochs: 0.1 / sqrt(6)
        assert!((s.current() - 0.1 / 6.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn adaptive_divides_after_two_bad_epochs() {
        let mut s = ScheduleState::new(LearningRate::Adaptive, 0.5, 1e-4);
        s.observe_epoch(1.0); // first observation establishes best
        assert_eq!(s.current(), 0.5);
        s.observe_epoch(1.0); // bad 1
        assert_eq!(s.current(), 0.5);
        s.observe_epoch(1.0); // bad 2 -> divide
        assert!((s.current() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn adaptive_resets_streak_on_improvement() {
        let mut s = ScheduleState::new(LearningRate::Adaptive, 0.5, 1e-4);
        s.observe_epoch(1.0);
        s.observe_epoch(1.0); // bad 1
        s.observe_epoch(0.5); // improvement resets
        s.observe_epoch(0.5); // bad 1 again
        assert_eq!(s.current(), 0.5);
    }

    #[test]
    fn name_roundtrip() {
        for k in LearningRate::SEARCH_SPACE {
            assert_eq!(LearningRate::from_name(k.name()), Some(k));
        }
        assert_eq!(LearningRate::from_name("cosine"), None);
    }
}
