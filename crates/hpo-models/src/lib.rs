//! From-scratch ML models tuned by the HPO harness.
//!
//! The paper tunes scikit-learn's `MLPClassifier`/`MLPRegressor` over the
//! eight hyperparameters of its Table III. The Rust ML ecosystem does not
//! provide an equivalent, so this crate reimplements it:
//!
//! * [`mlp`] — the multi-layer perceptron with hidden-layer-sizes,
//!   activations {logistic, tanh, relu}, solvers {sgd, adam, lbfgs},
//!   learning-rate schedules {constant, invscaling, adaptive}, momentum,
//!   mini-batches and early stopping.
//! * [`optimizer`] — SGD(+momentum), Adam and L-BFGS over flat parameter
//!   vectors.
//! * [`linear`] / [`knn`] / [`tree`] / [`forest`] — logistic/linear
//!   regression, kNN, CART and random-forest baselines used by tests,
//!   examples and the model-agnostic evaluation path.
//! * [`estimator`] — the `fit`/`predict` traits the HPO evaluator drives,
//!   plus the deterministic training-cost accounting used by the benchmark
//!   harness (see `DESIGN.md` §1 on the wall-clock substitution).

#![warn(missing_docs)]

pub mod activation;
pub mod estimator;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod optimizer;
pub mod schedule;
pub mod tree;

pub use estimator::{Classifier, Estimator, Regressor, TrainReport};
pub use mlp::{MlpClassifier, MlpParams, MlpRegressor};
