//! Figure 1: the Successive Halving budget schedule.
//!
//! The paper's Fig. 1 illustrates SHA on 8 configurations: per-configuration
//! budget 1/8 → 1/4 → 1/2 → full as the candidate set halves. This binary
//! runs real SHA on a synthetic dataset and prints the realized schedule —
//! rung, surviving candidates, per-configuration budget and its share of B.
//!
//! ```text
//! cargo run --release -p hpo-bench --bin exp_fig1_sha_schedule
//! ```

use hpo_bench::args::ExpArgs;
use hpo_bench::report::Table;
use hpo_core::evaluator::CvEvaluator;
use hpo_core::pipeline::Pipeline;
use hpo_core::sha::{successive_halving, ShaConfig};
use hpo_core::space::SearchSpace;
use hpo_models::mlp::MlpParams;

fn main() {
    let args = ExpArgs::parse();
    let tt =
        hpo_data::synth::catalog::PaperDataset::Australian.load(args.scale.max(1.0), args.seed);
    let n = tt.train.n_instances();

    let base = MlpParams {
        max_iter: 10,
        ..Default::default()
    };
    let evaluator = CvEvaluator::new(&tt.train, Pipeline::vanilla(), base.clone(), args.seed);
    let space = SearchSpace::mlp_cv18();
    let candidates: Vec<_> = (0..8).map(|i| space.configuration(i)).collect();
    let result = successive_halving(
        &evaluator,
        &space,
        &candidates,
        &base,
        &ShaConfig {
            eta: 2,
            min_budget: 5,
        },
        args.seed,
    );

    println!(
        "SHA schedule on {} training instances (B = {n}), 8 configurations, η = 2\n",
        n
    );
    let mut table = Table::new(&["rung", "candidates", "budget b_t", "b_t / B"]);
    let max_rung = result
        .history
        .trials()
        .iter()
        .map(|t| t.rung)
        .max()
        .unwrap_or(0);
    for rung in 0..=max_rung {
        let trials: Vec<_> = result.history.rung(rung).collect();
        let budget = trials.first().map(|t| t.budget).unwrap_or(0);
        table.row(vec![
            rung.to_string(),
            trials.len().to_string(),
            budget.to_string(),
            format!("1/{}", (n as f64 / budget as f64).round() as usize),
        ]);
    }
    table.print();
    println!("\nselected configuration: {}", space.describe(&result.best));
}
