//! Figure 5: cross-validation methods across subset sizes.
//!
//! The paper's §IV-C experiment: 18 configurations (hidden sizes ×
//! activation), 5-fold cross-validation on subsets of growing size, three
//! methods — random K-fold, label-stratified K-fold, and ours (group-based
//! general + special folds with the Eq. 3 metric). Reports the recommended
//! configuration's test accuracy and the nDCG of the CV ranking against the
//! full-training ground truth.
//!
//! ```text
//! cargo run --release -p hpo-bench --bin exp_fig5_cv_methods -- \
//!     --datasets australian,splice,a9a,gisette,satimage,usps --scale 0.3
//! ```

use hpo_bench::args::ExpArgs;
use hpo_bench::cv_eval::{evaluate_cv_method, ground_truth};
use hpo_bench::report::{json_line, MeanStd, Table};
use hpo_core::pipeline::Pipeline;
use hpo_core::space::SearchSpace;
use hpo_data::synth::catalog::PaperDataset;
use hpo_models::mlp::MlpParams;

fn main() {
    let args = ExpArgs::parse();
    let datasets = args.datasets_or(&[
        PaperDataset::Australian,
        PaperDataset::Splice,
        PaperDataset::Satimage,
    ]);
    let space = SearchSpace::mlp_cv18();
    let max_iter: usize = args.get("max-iter").unwrap_or(12);
    let base = MlpParams {
        max_iter,
        ..Default::default()
    };
    let ratios = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    type PipelineCtor = fn() -> Pipeline;
    let methods: [(&str, PipelineCtor); 3] = [
        ("random", Pipeline::random_folds as fn() -> Pipeline),
        ("stratified", Pipeline::vanilla),
        ("ours", Pipeline::enhanced),
    ];

    println!(
        "Fig. 5 reproduction: 18 configurations, ratios {ratios:?}, {} repeats\n",
        args.repeats
    );

    for ds in datasets {
        println!("== {} ==", ds.name());
        // per (method, ratio): repetition values
        let mut acc = vec![vec![Vec::new(); ratios.len()]; methods.len()];
        let mut ndcg = vec![vec![Vec::new(); ratios.len()]; methods.len()];
        for rep in 0..args.repeats {
            let seed = args.seed + rep as u64;
            let tt = ds.load(args.scale, seed);
            let truth = ground_truth(&tt.train, &tt.test, &space, &base, seed);
            for (mi, (name, make)) in methods.iter().enumerate() {
                for (ri, &ratio) in ratios.iter().enumerate() {
                    let result =
                        evaluate_cv_method(&tt.train, &space, &base, make(), ratio, &truth, seed);
                    acc[mi][ri].push(result.recommended_test_score);
                    ndcg[mi][ri].push(result.ndcg);
                    json_line(
                        args.json,
                        &serde_json::json!({
                            "experiment": "fig5",
                            "dataset": ds.name(),
                            "method": name,
                            "ratio": ratio,
                            "seed": seed,
                            "result": result,
                        }),
                    );
                }
            }
        }

        let mut t_acc = Table::new(&["method", "10%", "20%", "40%", "60%", "80%", "100%"]);
        let mut t_ndcg = Table::new(&["method", "10%", "20%", "40%", "60%", "80%", "100%"]);
        for (mi, (name, _)) in methods.iter().enumerate() {
            let mut row_a = vec![name.to_string()];
            let mut row_n = vec![name.to_string()];
            for ri in 0..ratios.len() {
                row_a.push(MeanStd::of(&acc[mi][ri]).fmt_pct(1));
                row_n.push(format!("{:.3}", MeanStd::of(&ndcg[mi][ri]).mean));
            }
            t_acc.row(row_a);
            t_ndcg.row(row_n);
        }
        println!("test score of recommended configuration (%):");
        t_acc.print();
        println!("nDCG of the configuration ranking:");
        t_ndcg.print();
        println!();
    }
}
