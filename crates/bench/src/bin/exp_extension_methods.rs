//! Extension experiment (beyond the paper's tables): the asynchronous and
//! evolutionary bandit methods the paper cites — ASHA, PASHA and DEHB —
//! with and without the enhanced pipeline.
//!
//! The paper integrates its method into SHA/HB/BOHB; §II-B names ASHA, PASHA
//! and DEHB as the other prominent bandit variants. This binary shows the
//! same pipeline swap working there too, reporting the usual test-score /
//! search-time / cost row per arm.
//!
//! ```text
//! cargo run --release -p hpo-bench --bin exp_extension_methods
//! ```

use hpo_bench::args::ExpArgs;
use hpo_bench::report::{json_line, MeanStd, Table};
use hpo_core::asha::AshaConfig;
use hpo_core::dehb::DehbConfig;
use hpo_core::harness::{run_method, Method};
use hpo_core::pasha::PashaConfig;
use hpo_core::pipeline::Pipeline;
use hpo_core::space::SearchSpace;
use hpo_data::synth::catalog::PaperDataset;
use hpo_models::mlp::MlpParams;
use std::collections::BTreeMap;

fn main() {
    let args = ExpArgs::parse();
    let datasets = args.datasets_or(&[PaperDataset::Australian, PaperDataset::Satimage]);
    let n_hps: usize = args.get("hps").unwrap_or(4);
    let space = SearchSpace::mlp_table3(n_hps);
    let max_iter: usize = args.get("max-iter").unwrap_or(15);
    let workers: usize = args.get("workers").unwrap_or(4);
    let base = MlpParams {
        max_iter,
        ..Default::default()
    };

    println!(
        "Extension methods (ASHA/PASHA/DEHB) × pipelines, {} configurations, {} workers\n",
        space.n_configurations(),
        workers
    );

    for ds in datasets {
        let mut acc: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut time: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut cost: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for rep in 0..args.repeats {
            let seed = args.seed + rep as u64;
            let tt = ds.load(args.scale, seed);
            let methods: Vec<Method> = vec![
                Method::Asha(AshaConfig {
                    workers,
                    n_configs: 32,
                    ..Default::default()
                }),
                Method::Pasha(PashaConfig {
                    workers,
                    n_configs: 32,
                    ..Default::default()
                }),
                Method::Dehb(DehbConfig::default()),
            ];
            for method in &methods {
                for pipeline in [Pipeline::vanilla(), Pipeline::enhanced()] {
                    let row =
                        run_method(&tt.train, &tt.test, &space, pipeline, &base, method, seed);
                    let label = if row.pipeline == "enhanced" {
                        format!("{}+", row.method)
                    } else {
                        row.method.clone()
                    };
                    acc.entry(label.clone()).or_default().push(row.test_score);
                    time.entry(label.clone())
                        .or_default()
                        .push(row.search_seconds);
                    cost.entry(label.clone())
                        .or_default()
                        .push(row.search_cost_units as f64);
                    json_line(
                        args.json,
                        &serde_json::json!({
                            "experiment": "extension_methods",
                            "dataset": ds.name(),
                            "seed": seed,
                            "arm": label,
                            "row": row,
                        }),
                    );
                }
            }
        }
        println!("== {} ==", ds.name());
        let mut table = Table::new(&["arm", "test (%)", "time (s)", "cost (GMAC)"]);
        for arm in ["ASHA", "ASHA+", "PASHA", "PASHA+", "DEHB", "DEHB+"] {
            let a = MeanStd::of(acc.get(arm).map(Vec::as_slice).unwrap_or(&[]));
            let t = MeanStd::of(time.get(arm).map(Vec::as_slice).unwrap_or(&[]));
            let c = MeanStd::of(cost.get(arm).map(Vec::as_slice).unwrap_or(&[]));
            table.row(vec![
                arm.to_string(),
                a.fmt_pct(2),
                t.fmt(2),
                format!("{:.2}±{:.2}", c.mean / 1e9, c.std / 1e9),
            ]);
        }
        table.print();
        println!();
    }
}
