//! Figure 6: the general/special fold allocation sweep.
//!
//! Holds grouping and the mean metric fixed and varies the fold mix
//! `(k_gen, k_spe)` from all-general `(5,0)` to all-special `(0,5)` with the
//! total fixed at 5 — the paper's independent experiment on Operation 2.
//!
//! ```text
//! cargo run --release -p hpo-bench --bin exp_fig6_fold_allocation
//! ```

use hpo_bench::args::ExpArgs;
use hpo_bench::cv_eval::{evaluate_cv_method, ground_truth};
use hpo_bench::report::{json_line, MeanStd, Table};
use hpo_core::pipeline::Pipeline;
use hpo_core::space::SearchSpace;
use hpo_data::synth::catalog::PaperDataset;
use hpo_metrics::EvalMetric;
use hpo_models::mlp::MlpParams;
use hpo_sampling::groups::GroupingConfig;
use hpo_sampling::{FoldStrategy, GenFoldsConfig};

fn main() {
    let args = ExpArgs::parse();
    let datasets = args.datasets_or(&[
        PaperDataset::Australian,
        PaperDataset::Splice,
        PaperDataset::Satimage,
    ]);
    let space = SearchSpace::mlp_cv18();
    let max_iter: usize = args.get("max-iter").unwrap_or(12);
    let ratio: f64 = args.get("ratio").unwrap_or(0.2);
    let base = MlpParams {
        max_iter,
        ..Default::default()
    };
    let mixes: [(usize, usize); 6] = [(5, 0), (4, 1), (3, 2), (2, 3), (1, 4), (0, 5)];

    println!(
        "Fig. 6 reproduction: fold allocation sweep at subset ratio {:.0}%\n",
        ratio * 100.0
    );
    for ds in datasets {
        println!("== {} ==", ds.name());
        let mut table = Table::new(&["k_gen:k_spe", "test (%)", "nDCG"]);
        for (k_gen, k_spe) in mixes {
            let pipeline = Pipeline {
                fold_strategy: FoldStrategy::GeneralSpecial(GenFoldsConfig {
                    k_gen,
                    k_spe,
                    special_own_frac: 0.8,
                }),
                metric: EvalMetric::MeanOnly, // isolate the fold mix
                grouping: Some(GroupingConfig::default()),
                per_config_folds: true,
                label: format!("{k_gen}:{k_spe}"),
            };
            let mut scores = Vec::new();
            let mut ndcgs = Vec::new();
            for rep in 0..args.repeats {
                let seed = args.seed + rep as u64;
                let tt = ds.load(args.scale, seed);
                let truth = ground_truth(&tt.train, &tt.test, &space, &base, seed);
                let r = evaluate_cv_method(
                    &tt.train,
                    &space,
                    &base,
                    pipeline.clone(),
                    ratio,
                    &truth,
                    seed,
                );
                scores.push(r.recommended_test_score);
                ndcgs.push(r.ndcg);
                json_line(
                    args.json,
                    &serde_json::json!({
                        "experiment": "fig6",
                        "dataset": ds.name(),
                        "k_gen": k_gen,
                        "k_spe": k_spe,
                        "seed": seed,
                        "result": r,
                    }),
                );
            }
            table.row(vec![
                format!("{k_gen}:{k_spe}"),
                MeanStd::of(&scores).fmt_pct(2),
                format!("{:.3}", MeanStd::of(&ndcgs).mean),
            ]);
        }
        table.print();
        println!();
    }
}
