//! Figure 7: the evaluation-metric ablation.
//!
//! Holds grouping and the paper's fold construction fixed and varies only
//! the metric: the vanilla fold mean vs Eq. 3 (`µ + α·β(γ)·σ`), across
//! subset sizes. An extra arm — UCB with a *fixed* variance weight
//! (`β ≡ β_max`, i.e. no size adaptation) — goes beyond the paper and
//! isolates the contribution of the β(γ) schedule itself.
//!
//! ```text
//! cargo run --release -p hpo-bench --bin exp_fig7_metric_ablation
//! ```

use hpo_bench::args::ExpArgs;
use hpo_bench::cv_eval::{evaluate_cv_method, ground_truth};
use hpo_bench::report::{json_line, MeanStd, Table};
use hpo_core::pipeline::Pipeline;
use hpo_core::space::SearchSpace;
use hpo_data::synth::catalog::PaperDataset;
use hpo_metrics::EvalMetric;
use hpo_models::mlp::MlpParams;
use hpo_sampling::groups::GroupingConfig;
use hpo_sampling::FoldStrategy;

fn main() {
    let args = ExpArgs::parse();
    let datasets = args.datasets_or(&[
        PaperDataset::Australian,
        PaperDataset::Splice,
        PaperDataset::Satimage,
    ]);
    let space = SearchSpace::mlp_cv18();
    let max_iter: usize = args.get("max-iter").unwrap_or(12);
    let base = MlpParams {
        max_iter,
        ..Default::default()
    };
    let ratios = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    let metrics: [(&str, EvalMetric); 3] = [
        ("vanilla(mean)", EvalMetric::MeanOnly),
        ("ours(eq.3)", EvalMetric::paper_default()),
        // β frozen at β_max: variance always fully weighted — the paper's
        // design says this should hurt at large subsets.
        ("fixed-β(ucb)", EvalMetric::Ucb { alpha: 1.0 }),
    ];

    println!("Fig. 7 reproduction: metric ablation (grouping + folds fixed)\n");
    for ds in datasets {
        println!("== {} ==", ds.name());
        let mut t_acc = Table::new(&["metric", "10%", "20%", "40%", "60%", "80%", "100%"]);
        let mut t_ndcg = Table::new(&["metric", "10%", "20%", "40%", "60%", "80%", "100%"]);
        for (name, metric) in &metrics {
            let mut row_a = vec![name.to_string()];
            let mut row_n = vec![name.to_string()];
            for &ratio in &ratios {
                let pipeline = Pipeline {
                    fold_strategy: FoldStrategy::paper_default(),
                    metric: *metric,
                    grouping: Some(GroupingConfig::default()),
                    per_config_folds: true,
                    label: name.to_string(),
                };
                let mut scores = Vec::new();
                let mut ndcgs = Vec::new();
                for rep in 0..args.repeats {
                    let seed = args.seed + rep as u64;
                    let tt = ds.load(args.scale, seed);
                    let truth = ground_truth(&tt.train, &tt.test, &space, &base, seed);
                    let r = evaluate_cv_method(
                        &tt.train,
                        &space,
                        &base,
                        pipeline.clone(),
                        ratio,
                        &truth,
                        seed,
                    );
                    scores.push(r.recommended_test_score);
                    ndcgs.push(r.ndcg);
                    json_line(
                        args.json,
                        &serde_json::json!({
                            "experiment": "fig7",
                            "dataset": ds.name(),
                            "metric": name,
                            "ratio": ratio,
                            "seed": seed,
                            "result": r,
                        }),
                    );
                }
                row_a.push(MeanStd::of(&scores).fmt_pct(1));
                row_n.push(format!("{:.3}", MeanStd::of(&ndcgs).mean));
            }
            t_acc.row(row_a);
            t_ndcg.row(row_n);
        }
        println!("test score of recommended configuration (%):");
        t_acc.print();
        println!("nDCG of the configuration ranking:");
        t_ndcg.print();
        println!();
    }
}
