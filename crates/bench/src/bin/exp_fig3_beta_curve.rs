//! Figure 3: the β–γ curve of the sampling-size weight (Eq. 2).
//!
//! Prints the (γ, β) series for β_max = 10 (the paper's setting), plus the
//! derived thresholds γ_min/γ_max, so the curve can be plotted and compared
//! with the paper's line figure.
//!
//! ```text
//! cargo run --release -p hpo-bench --bin exp_fig3_beta_curve [--beta-max F]
//! ```

use hpo_bench::args::ExpArgs;
use hpo_bench::report::Table;
use hpo_metrics::score::beta_weight;

fn main() {
    let args = ExpArgs::parse();
    let beta_max: f64 = args.get("beta-max").unwrap_or(10.0);

    let gamma_min = 50.0 * (1.0 - (beta_max / 4.0).tanh());
    let gamma_max = 50.0 * (1.0 - (-(beta_max / 4.0)).tanh());
    println!("β(γ) with β_max = {beta_max}  (γ_min = {gamma_min:.3}%, γ_max = {gamma_max:.3}%)\n");

    let mut table = Table::new(&["gamma_pct", "beta"]);
    let mut gammas: Vec<f64> = vec![0.1, 0.2, 0.5];
    gammas.extend((1..=99).map(|g| g as f64));
    gammas.extend([99.5, 99.8, 99.9, 100.0]);
    for &g in &gammas {
        table.row(vec![
            format!("{g:.1}"),
            format!("{:.4}", beta_weight(g, beta_max)),
        ]);
    }
    table.print();

    // The properties the paper designs for, verified on the fly.
    assert!((beta_weight(50.0, beta_max) - beta_max / 2.0).abs() < 1e-9);
    assert!((beta_weight(0.1, beta_max) - beta_max).abs() < 1e-6);
    assert!(beta_weight(100.0, beta_max).abs() < 1e-6);
    println!("\nchecks: β(γ_min)=β_max, β(50%)=β_max/2, β(γ_max)=0 — all hold");
}
