//! End-to-end HPO throughput benchmark with a machine-readable report.
//!
//! Runs every optimizer (random, SHA, HB, BOHB, DEHB, ASHA, PASHA) on each
//! dataset, prints an aligned summary table, and writes `BENCH_hpo.json`
//! containing one row per (method, dataset) — wall-clock seconds, trial
//! count, trials/sec, deterministic cost — plus a snapshot of the global
//! metrics registry (trial-latency histograms, hot-path timers) accumulated
//! over the whole run.
//!
//! ```text
//! cargo run --release -p hpo-bench --bin bench_hpo -- \
//!     --datasets australian --scale 0.1 --out BENCH_hpo.json
//! ```

use hpo_bench::args::ExpArgs;
use hpo_bench::report::Table;
use hpo_core::asha::AshaConfig;
use hpo_core::bohb::BohbConfig;
use hpo_core::dehb::DehbConfig;
use hpo_core::harness::{run_method_with, Method, RunOptions};
use hpo_core::hyperband::HyperbandConfig;
use hpo_core::obs;
use hpo_core::pasha::PashaConfig;
use hpo_core::persist::write_json_atomic;
use hpo_core::pipeline::Pipeline;
use hpo_core::random_search::RandomSearchConfig;
use hpo_core::sha::ShaConfig;
use hpo_core::space::SearchSpace;
use hpo_data::synth::catalog::PaperDataset;
use hpo_models::mlp::MlpParams;

fn methods() -> Vec<(&'static str, Method)> {
    vec![
        ("random", Method::Random(RandomSearchConfig::default())),
        ("sha", Method::Sha(ShaConfig::default())),
        ("hb", Method::Hyperband(HyperbandConfig::default())),
        ("bohb", Method::Bohb(BohbConfig::default())),
        ("dehb", Method::Dehb(DehbConfig::default())),
        ("asha", Method::Asha(AshaConfig::default())),
        ("pasha", Method::Pasha(PashaConfig::default())),
    ]
}

fn main() {
    let args = ExpArgs::parse();
    let datasets = args.datasets_or(&[PaperDataset::Australian]);
    let out_path: String = args
        .get("out")
        .unwrap_or_else(|| "BENCH_hpo.json".to_string());
    let pipeline = match args
        .get::<String>("pipeline")
        .unwrap_or_else(|| "enhanced".to_string())
        .as_str()
    {
        "vanilla" => Pipeline::vanilla(),
        "enhanced" => Pipeline::enhanced(),
        other => panic!("unknown pipeline `{other}`"),
    };
    let hps: usize = args.get("hps").unwrap_or(4);
    let space = SearchSpace::mlp_table3(hps);
    let base = MlpParams {
        max_iter: args.get("max-iter").unwrap_or(10),
        ..Default::default()
    };

    println!(
        "HPO benchmark: {} configurations, scale {}, seed {}\n",
        space.n_configurations(),
        args.scale,
        args.seed
    );

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "dataset",
        "method",
        "wall (s)",
        "trials",
        "trials/s",
        "cost (GMAC)",
        "test",
    ]);
    for ds in &datasets {
        let tt = ds.load(args.scale, args.seed);
        for (name, method) in methods() {
            let row = run_method_with(
                &tt.train,
                &tt.test,
                &space,
                pipeline.clone(),
                &base,
                &method,
                args.seed,
                &RunOptions::default(),
            );
            let trials_per_sec = if row.search_seconds > 0.0 {
                row.n_evaluations as f64 / row.search_seconds
            } else {
                0.0
            };
            table.row(vec![
                ds.name().to_string(),
                name.to_string(),
                format!("{:.2}", row.search_seconds),
                row.n_evaluations.to_string(),
                format!("{trials_per_sec:.1}"),
                format!("{:.2}", row.search_cost_units as f64 / 1e9),
                format!("{:.4}", row.test_score),
            ]);
            rows.push(serde_json::json!({
                "dataset": ds.name(),
                "method": name,
                "pipeline": row.pipeline,
                "wall_seconds": row.search_seconds,
                "trials": row.n_evaluations,
                "trials_per_sec": trials_per_sec,
                "cost_units": row.search_cost_units,
                "n_failures": row.n_failures,
                "train_score": row.train_score,
                "test_score": row.test_score,
            }));
        }
    }
    table.print();

    let metrics = obs::global_metrics().snapshot();
    let report = serde_json::json!({
        "bench": "hpo",
        "seed": args.seed,
        "scale": args.scale,
        "n_configurations": space.n_configurations(),
        "rows": rows,
        "metrics": metrics,
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    write_json_atomic(&out_path, text.as_bytes()).expect("write benchmark report");
    println!("\nwrote {out_path}");
}
