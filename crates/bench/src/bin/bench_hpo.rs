//! End-to-end HPO throughput benchmark with a machine-readable report.
//!
//! Runs every optimizer (random, SHA, HB, BOHB, DEHB, ASHA, PASHA) on each
//! dataset at every `--workers` setting, prints an aligned summary table, and
//! writes `BENCH_hpo.json` containing one row per (method, dataset, workers)
//! — wall-clock seconds, trial count, trials/sec, deterministic cost — plus
//! per-method parallel-scaling summaries, a warm-vs-cold continuation
//! comparison (`--warm-start both`, the default, re-runs each method cold and
//! reports cost-units and wall-clock saved by warm starting), kernel
//! micro-benchmarks — a matmul size sweep (64/256/512/1024, GFLOP/s, kernel
//! vs naive), activation/loss slice kernels vs their scalar references, and
//! a single-trial `fold_workers` 1-vs-4 comparison with a bit-identity
//! assertion — the machine's core counts, and a snapshot of the global
//! metrics registry accumulated over the run. Build with `--features simd`
//! to measure the AVX2 kernels (`simd_compiled` in the report says which).
//!
//! ```text
//! cargo run --release -p hpo-bench --bin bench_hpo -- \
//!     --datasets australian --scale 0.1 --workers 1,4 --out BENCH_hpo.json
//! ```
//!
//! With `--server`, runs a service smoke benchmark instead: it starts an
//! in-process `hpo-server` on a loopback port, submits one run through the
//! HTTP API, and reports the service overhead — submit-to-first-trial
//! latency and end-to-end trials/sec through the API versus the same spec
//! invoked directly via `run_method_with`.
//!
//! With `--fleet`, benchmarks the distributed runner fleet instead:
//! for each runner count (default 1, 2, 4) it starts a `--fleet`
//! coordinator plus that many in-process runner threads, submits one
//! spec, and reports trials/sec versus runner count — asserting at each
//! width that the fleet result matches the direct invocation.

use hpo_bench::args::ExpArgs;
use hpo_bench::report::Table;
use hpo_core::asha::AshaConfig;
use hpo_core::bandit::{EpsGreedyConfig, ThompsonConfig, UcbConfig};
use hpo_core::bohb::BohbConfig;
use hpo_core::dehb::DehbConfig;
use hpo_core::harness::{run_method_with, Method, RunOptions};
use hpo_core::hyperband::HyperbandConfig;
use hpo_core::idhb::IdhbConfig;
use hpo_core::obs;
use hpo_core::pasha::PashaConfig;
use hpo_core::persist::write_json_atomic;
use hpo_core::pipeline::Pipeline;
use hpo_core::random_search::RandomSearchConfig;
use hpo_core::sha::ShaConfig;
use hpo_core::space::SearchSpace;
use hpo_data::matrix::Matrix;
use hpo_data::synth::catalog::PaperDataset;
use hpo_models::mlp::MlpParams;
use std::collections::BTreeMap;
use std::time::Instant;

fn methods() -> Vec<(&'static str, Method)> {
    vec![
        ("random", Method::Random(RandomSearchConfig::default())),
        ("sha", Method::Sha(ShaConfig::default())),
        ("hb", Method::Hyperband(HyperbandConfig::default())),
        ("bohb", Method::Bohb(BohbConfig::default())),
        ("dehb", Method::Dehb(DehbConfig::default())),
        ("asha", Method::Asha(AshaConfig::default())),
        ("pasha", Method::Pasha(PashaConfig::default())),
        ("ucb", Method::Ucb(UcbConfig::default())),
        ("thompson", Method::Thompson(ThompsonConfig::default())),
        ("epsgreedy", Method::EpsGreedy(EpsGreedyConfig::default())),
        ("idhb", Method::Idhb(IdhbConfig::default())),
    ]
}

/// Logical CPUs visible to this process.
fn logical_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical core count: distinct (physical id, core id) pairs from
/// /proc/cpuinfo on Linux, falling back to the logical count elsewhere (or
/// when the file lists no topology, e.g. some containers/VMs).
fn physical_cores() -> usize {
    let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
        return logical_cores();
    };
    let mut pairs = std::collections::HashSet::new();
    let (mut phys, mut core) = (None, None);
    for line in info.lines() {
        let mut split = line.splitn(2, ':');
        let key = split.next().unwrap_or("").trim();
        let val = split.next().unwrap_or("").trim().to_string();
        match key {
            "physical id" => phys = Some(val),
            "core id" => core = Some(val),
            "" => {
                if let (Some(p), Some(c)) = (phys.take(), core.take()) {
                    pairs.insert((p, c));
                }
            }
            _ => {}
        }
    }
    if let (Some(p), Some(c)) = (phys, core) {
        pairs.insert((p, c));
    }
    if pairs.is_empty() {
        logical_cores()
    } else {
        pairs.len()
    }
}

/// Deterministic pseudo-random matrix for the kernel micro-benchmark.
fn bench_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

/// Times `f` over `iters` runs, returning best-of seconds (noise-robust).
fn time_best_of(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Single-thread matmul size sweep: the production kernel (cache-blocked,
/// plus the AVX2 path when the `simd` feature is compiled in) versus the
/// naive triple loop, with GFLOP/s (2n³ flops per product). The kernels are
/// asserted bit-identical at every size before timing — the §5.12 policy,
/// enforced where the numbers are produced.
fn matmul_sweep(seed: u64) -> serde_json::Value {
    let mut sizes = Vec::new();
    for &n in &[64usize, 256, 512, 1024] {
        let a = bench_matrix(n, n, seed ^ n as u64);
        let b = bench_matrix(n, n, seed ^ 0xB ^ n as u64);
        assert_eq!(
            a.matmul(&b).as_slice(),
            a.matmul_naive(&b).as_slice(),
            "kernel and naive matmul disagree at {n}x{n}"
        );
        let iters = if n >= 512 { 3 } else { 5 };
        let kernel = time_best_of(iters, || {
            std::hint::black_box(std::hint::black_box(&a).matmul(std::hint::black_box(&b)));
        });
        let naive = time_best_of(iters, || {
            std::hint::black_box(std::hint::black_box(&a).matmul_naive(std::hint::black_box(&b)));
        });
        let flops = 2.0 * (n as f64).powi(3);
        let kernel_gflops = flops / kernel.max(1e-12) / 1e9;
        let naive_gflops = flops / naive.max(1e-12) / 1e9;
        let speedup = if kernel > 0.0 { naive / kernel } else { 0.0 };
        println!(
            "matmul {n:>4}x{n:<4} kernel {:>8.2} ms ({kernel_gflops:>6.2} GFLOP/s)  \
             naive {:>8.2} ms ({naive_gflops:>6.2} GFLOP/s)  speedup {speedup:.2}x",
            kernel * 1e3,
            naive * 1e3,
        );
        sizes.push(serde_json::json!({
            "size": n,
            "kernel_seconds": kernel,
            "kernel_gflops": kernel_gflops,
            "naive_seconds": naive,
            "naive_gflops": naive_gflops,
            "speedup": speedup,
        }));
    }
    serde_json::json!({
        "simd_compiled": cfg!(feature = "simd"),
        "sizes": sizes,
    })
}

/// Activation and loss kernel micro-benchmarks: the slice kernels the
/// training loop actually calls versus their scalar/sequential references,
/// on hot-loop-sized buffers. Both sides pay the same buffer copy, so the
/// ratio isolates the kernel body.
fn kernel_microbench(seed: u64) -> serde_json::Value {
    use hpo_models::activation::Activation;
    use hpo_models::loss::OutputLoss;
    const N: usize = 1 << 16;
    let xs = bench_matrix(1, N, seed ^ 0xAC).as_slice().to_vec();
    let mut activations = Vec::new();
    for act in [Activation::Logistic, Activation::Tanh, Activation::Relu] {
        let mut buf = vec![0.0; N];
        let kernel = time_best_of(20, || {
            buf.copy_from_slice(&xs);
            act.apply_slice(&mut buf);
            std::hint::black_box(&buf);
        });
        let scalar = time_best_of(20, || {
            buf.copy_from_slice(&xs);
            for v in &mut buf {
                *v = act.apply(*v);
            }
            std::hint::black_box(&buf);
        });
        let speedup = if kernel > 0.0 { scalar / kernel } else { 0.0 };
        println!(
            "activation {act:?}: kernel {:>7.1} us, scalar {:>7.1} us, speedup {speedup:.2}x",
            kernel * 1e6,
            scalar * 1e6
        );
        activations.push(serde_json::json!({
            "activation": format!("{act:?}"),
            "n": N,
            "kernel_seconds": kernel,
            "scalar_seconds": scalar,
            "speedup": speedup,
        }));
    }
    let (rows, cols) = (512, 32);
    let p_data: Vec<f64> = bench_matrix(rows, cols, seed ^ 0xCE)
        .as_slice()
        .iter()
        .map(|v| v.abs().max(1e-9))
        .collect();
    let t_data: Vec<f64> = (0..rows * cols)
        .map(|i| if i % cols == 0 { 1.0 } else { 0.0 })
        .collect();
    let p = Matrix::from_vec(rows, cols, p_data).expect("shape matches");
    let t = Matrix::from_vec(rows, cols, t_data).expect("shape matches");
    let mut losses = Vec::new();
    for kind in [OutputLoss::SoftmaxCrossEntropy, OutputLoss::SquaredError] {
        let kernel = time_best_of(20, || {
            std::hint::black_box(kind.loss(std::hint::black_box(&p), std::hint::black_box(&t)));
        });
        let reference = time_best_of(20, || {
            std::hint::black_box(
                kind.loss_reference(std::hint::black_box(&p), std::hint::black_box(&t)),
            );
        });
        let speedup = if kernel > 0.0 {
            reference / kernel
        } else {
            0.0
        };
        println!(
            "loss {kind:?}: kernel {:>7.1} us, reference {:>7.1} us, speedup {speedup:.2}x",
            kernel * 1e6,
            reference * 1e6
        );
        losses.push(serde_json::json!({
            "loss": format!("{kind:?}"),
            "rows": rows,
            "cols": cols,
            "kernel_seconds": kernel,
            "reference_seconds": reference,
            "speedup": speedup,
        }));
    }
    serde_json::json!({
        "simd_compiled": cfg!(feature = "simd"),
        "activations": activations,
        "losses": losses,
    })
}

/// Single-trial fold parallelism: one CV evaluation at `fold_workers` 1
/// versus 4 on a standalone evaluator (which grants the cap outright, no
/// pool needed). Outcomes are asserted bit-identical — the fold-order
/// commit contract — and the wall-clock speedup is what a shallow queue
/// gains from `--fold-workers`.
fn fold_workers_microbench(args: &ExpArgs) -> serde_json::Value {
    use hpo_core::CvEvaluator;
    let tt = PaperDataset::Australian.load(args.scale.max(0.5), args.seed);
    let params = MlpParams {
        hidden_layer_sizes: vec![32],
        max_iter: args.get("max-iter").unwrap_or(10).max(10),
        ..Default::default()
    };
    let budget = tt.train.n_instances();
    let mut run = |fold_workers: usize| {
        let ev = CvEvaluator::new(&tt.train, Pipeline::enhanced(), params.clone(), args.seed)
            .with_fold_workers(fold_workers);
        let mut out = None;
        let secs = time_best_of(3, || {
            out = Some(ev.evaluate(&params, budget, 0));
        });
        (secs, out.expect("at least one run"))
    };
    let (seq_seconds, seq_out) = run(1);
    let (par_seconds, par_out) = run(4);
    assert_eq!(
        seq_out.fold_scores.folds, par_out.fold_scores.folds,
        "fold-parallel trial diverged from sequential"
    );
    assert_eq!(seq_out.score.to_bits(), par_out.score.to_bits());
    assert_eq!(seq_out.cost_units, par_out.cost_units);
    let speedup = if par_seconds > 0.0 {
        seq_seconds / par_seconds
    } else {
        0.0
    };
    println!(
        "single-trial folds: fold-workers 1 {:.1} ms, fold-workers 4 {:.1} ms, \
         speedup {speedup:.2}x (outcomes bit-identical)",
        seq_seconds * 1e3,
        par_seconds * 1e3
    );
    serde_json::json!({
        "budget": budget,
        "fold_workers": 4,
        "sequential_seconds": seq_seconds,
        "parallel_seconds": par_seconds,
        "speedup": speedup,
    })
}

/// p50/p90/p99 summaries of the latency histograms the global metrics
/// registry accumulated over the benchmark: trial wall time always, lease
/// round-trips when a fleet ran in-process (the runner threads share this
/// process's registry). Also prints one line per histogram.
fn latency_percentiles() -> serde_json::Value {
    let snap = obs::global_metrics().snapshot();
    let mut out = serde_json::Map::new();
    for name in ["hpo_trial_seconds", "hpo_fleet_lease_rtt_seconds"] {
        let Some(h) = snap.histograms.get(name) else {
            continue;
        };
        if let (Some(p50), Some(p90), Some(p99)) = (h.p50, h.p90, h.p99) {
            println!(
                "latency {name}: p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms ({} observations)",
                p50 * 1e3,
                p90 * 1e3,
                p99 * 1e3,
                h.count,
            );
            out.insert(
                name.to_string(),
                serde_json::json!({
                    "count": h.count,
                    "p50_seconds": p50,
                    "p90_seconds": p90,
                    "p99_seconds": p99,
                }),
            );
        }
    }
    serde_json::Value::Object(out)
}

/// `--plugin` mode: measures what the subprocess evaluator boundary costs
/// per trial. A trivial `/bin/sh` evaluator (reads the JSON request, prints
/// a constant score) is driven through `PluginEvaluator` for `--plugin-trials`
/// evaluations; the p50/p99 of spawn + JSON round-trip wall time is reported
/// next to the same percentiles for an in-process MLP trial, so the report
/// shows exactly how much a fork/exec per trial buys you relative to staying
/// in-process.
fn plugin_bench(args: &ExpArgs, out_path: &str) {
    use hpo_core::plugin::{PluginEvaluator, PluginSettings};
    use hpo_core::spec::SpaceSpec;
    use hpo_core::CvEvaluator;
    use hpo_core::TrialEvaluator;

    let trials: usize = args.get("plugin-trials").unwrap_or(64);
    let spec = SpaceSpec::parse("lr float 0.001..0.1 log\nmomentum float 0.0..0.9\n")
        .expect("bench space parses");
    let space = spec.search_space();
    let settings = PluginSettings {
        command: vec![
            "/bin/sh".to_string(),
            "-c".to_string(),
            // Consume stdin (the JSON request) and answer with a constant
            // score: the evaluation itself is free, so the measured wall
            // time is pure spawn + pipe + JSON round-trip overhead.
            "cat >/dev/null; echo 0.5".to_string(),
        ],
        total_budget: 100,
        folds: 1,
        per_config_folds: true,
    };
    let evaluator = PluginEvaluator::new(settings);

    let mut plugin_secs = Vec::with_capacity(trials);
    for i in 0..trials {
        let config = space.configuration(i % space.n_configurations());
        let job = hpo_core::TrialJob::new(MlpParams::default(), 100, i as u64)
            .with_values(space.trial_values(&config));
        let t = Instant::now();
        let out = evaluator.evaluate_raw(&job);
        plugin_secs.push(t.elapsed().as_secs_f64());
        assert_eq!(out.score, 0.5, "stub evaluator answers 0.5");
    }

    let tt = PaperDataset::Australian.load(args.scale, args.seed);
    let params = MlpParams {
        max_iter: args.get("max-iter").unwrap_or(10),
        ..Default::default()
    };
    let budget = tt.train.n_instances();
    let mlp = CvEvaluator::new(&tt.train, Pipeline::enhanced(), params.clone(), args.seed);
    let mlp_trials = trials.min(16);
    let mut mlp_secs = Vec::with_capacity(mlp_trials);
    for _ in 0..mlp_trials {
        let t = Instant::now();
        std::hint::black_box(mlp.evaluate(&params, budget, 0));
        mlp_secs.push(t.elapsed().as_secs_f64());
    }

    let pct = |samples: &mut Vec<f64>, q: f64| {
        samples.sort_by(|a, b| a.total_cmp(b));
        let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
        samples[idx.min(samples.len() - 1)]
    };
    let plugin_p50 = pct(&mut plugin_secs, 0.50);
    let plugin_p99 = pct(&mut plugin_secs, 0.99);
    let mlp_p50 = pct(&mut mlp_secs, 0.50);
    let mlp_p99 = pct(&mut mlp_secs, 0.99);
    println!(
        "plugin trial (spawn + JSON round-trip): p50 {:.2} ms, p99 {:.2} ms over {trials} trials",
        plugin_p50 * 1e3,
        plugin_p99 * 1e3,
    );
    println!(
        "in-process MLP trial:                   p50 {:.2} ms, p99 {:.2} ms over {mlp_trials} trials",
        mlp_p50 * 1e3,
        mlp_p99 * 1e3,
    );
    println!(
        "subprocess overhead is {:.1}% of an MLP trial at p50",
        100.0 * plugin_p50 / mlp_p50.max(1e-12),
    );

    let report = serde_json::json!({
        "bench": "hpo",
        "mode": "plugin",
        "seed": args.seed,
        "scale": args.scale,
        "plugin": {
            "trials": trials,
            "spawn_roundtrip_p50_seconds": plugin_p50,
            "spawn_roundtrip_p99_seconds": plugin_p99,
        },
        "mlp": {
            "trials": mlp_trials,
            "budget": budget,
            "trial_p50_seconds": mlp_p50,
            "trial_p99_seconds": mlp_p99,
        },
        "overhead_ratio_p50": plugin_p50 / mlp_p50.max(1e-12),
        "latency_percentiles": latency_percentiles(),
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    write_json_atomic(out_path, text.as_bytes()).expect("write benchmark report");
    println!("wrote {out_path}");
}

/// `--server` smoke mode: measures what the HTTP/registry layer costs on
/// top of a direct invocation. One spec is submitted through a loopback
/// `hpo-server`; the same spec is then run directly; the report records
/// submit-to-first-trial latency, both end-to-end trials/sec figures, and
/// whether the two results agree on every model-relevant field.
fn server_smoke(args: &ExpArgs, out_path: &str) {
    use hpo_server::{serve, Client, RunSpec, ServerConfig};

    let data_dir = std::env::temp_dir().join(format!("hpo-bench-server-{}", std::process::id()));
    std::fs::create_dir_all(&data_dir).expect("create bench data dir");
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: data_dir.clone(),
        slots: 1,
        checkpoint_every: 1,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let client = Client::new(handle.addr().to_string());
    println!("server smoke: serving on http://{}", handle.addr());

    let spec = RunSpec {
        dataset: "synth:australian".to_string(),
        scale: args.scale,
        method: args.get("method").unwrap_or_else(|| "sha".to_string()),
        seed: args.seed,
        max_iter: args.get("max-iter").unwrap_or(10),
        ..RunSpec::default()
    };

    let submitted = Instant::now();
    let id = client.submit(&spec).expect("submit").id;
    let deadline = submitted + std::time::Duration::from_secs(600);
    let mut first_trial_seconds = f64::NAN;
    loop {
        assert!(Instant::now() < deadline, "server smoke timed out");
        if first_trial_seconds.is_nan()
            && client
                .events(&id, 0)
                .map(|tail| tail.contains("TrialStarted"))
                .unwrap_or(false)
        {
            first_trial_seconds = submitted.elapsed().as_secs_f64();
        }
        let view = client.status(&id).expect("status");
        if view.state.status.is_terminal() {
            assert_eq!(view.state.status, hpo_server::RunStatus::Completed);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let api_wall = submitted.elapsed().as_secs_f64();
    let via_api = client.result(&id).expect("result");
    handle.shutdown();

    let hpo_server::PreparedRun::Mlp(prepared) = spec.prepare().expect("spec prepares") else {
        panic!("server smoke benches MLP specs only");
    };
    let direct_start = Instant::now();
    let direct = run_method_with(
        &prepared.train,
        &prepared.test,
        &prepared.space,
        prepared.pipeline,
        &prepared.base,
        &prepared.method,
        spec.seed,
        &RunOptions {
            workers: spec.workers,
            warm_start: spec.warm_start,
            ..RunOptions::default()
        },
    );
    let direct_wall = direct_start.elapsed().as_secs_f64();

    // Same normalization as the service tests: wall-clock and resume
    // bookkeeping aside, the API must not change the result.
    let normalized = |mut r: hpo_core::harness::RunResult| {
        r.search_seconds = 0.0;
        r.n_resumed = 0;
        serde_json::to_string(&r).expect("result serializes")
    };
    let results_match = normalized(via_api.clone()) == normalized(direct.clone());
    let api_tps = via_api.n_evaluations as f64 / api_wall.max(1e-9);
    let direct_tps = direct.n_evaluations as f64 / direct_wall.max(1e-9);
    println!(
        "server smoke: submit-to-first-trial {:.1} ms, API {:.1} trials/s vs \
         direct {:.1} trials/s ({} trials), results match: {results_match}",
        first_trial_seconds * 1e3,
        api_tps,
        direct_tps,
        direct.n_evaluations,
    );

    let report = serde_json::json!({
        "bench": "hpo",
        "mode": "server-smoke",
        "seed": args.seed,
        "scale": args.scale,
        "method": spec.method,
        "max_iter": spec.max_iter,
        "server": {
            "submit_to_first_trial_seconds": first_trial_seconds,
            "api_wall_seconds": api_wall,
            "api_trials_per_sec": api_tps,
            "direct_wall_seconds": direct_wall,
            "direct_trials_per_sec": direct_tps,
            "overhead_wall_seconds": api_wall - direct_wall,
            "trials": direct.n_evaluations,
            "results_match": results_match,
        },
        "latency_percentiles": latency_percentiles(),
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    write_json_atomic(out_path, text.as_bytes()).expect("write benchmark report");
    println!("wrote {out_path}");
    std::fs::remove_dir_all(&data_dir).ok();
}

/// `--fleet` mode: trials/sec through the distributed runner fleet at
/// 1, 2 and 4 runners. Each row spins up a fresh `--fleet` coordinator
/// plus N in-process runner threads (chaos inert), submits one spec,
/// waits for completion, and checks the result against the direct
/// invocation — so the report also re-proves the byte-identity contract
/// at every fleet width.
fn fleet_bench(args: &ExpArgs, out_path: &str) {
    use hpo_core::CancelToken;
    use hpo_server::{
        run_runner, serve, ChaosPlan, Client, FleetConfig, RunSpec, RunnerConfig, RunnerExit,
        ServerConfig,
    };

    let spec = RunSpec {
        dataset: "synth:australian".to_string(),
        scale: args.scale,
        method: args.get("method").unwrap_or_else(|| "sha".to_string()),
        seed: args.seed,
        max_iter: args.get("max-iter").unwrap_or(10),
        workers: 1,
        ..RunSpec::default()
    };
    let runner_counts: Vec<usize> = args
        .get::<String>("runners")
        .unwrap_or_else(|| "1,2,4".to_string())
        .split(',')
        .map(|w| w.trim().parse().expect("--runners expects integers"))
        .collect();

    let hpo_server::PreparedRun::Mlp(prepared) = spec.prepare().expect("spec prepares") else {
        panic!("fleet bench runs MLP specs only");
    };
    let direct_start = Instant::now();
    let direct = run_method_with(
        &prepared.train,
        &prepared.test,
        &prepared.space,
        prepared.pipeline,
        &prepared.base,
        &prepared.method,
        spec.seed,
        &RunOptions {
            workers: spec.workers,
            warm_start: spec.warm_start,
            ..RunOptions::default()
        },
    );
    let direct_wall = direct_start.elapsed().as_secs_f64();
    let normalized = |mut r: hpo_core::harness::RunResult| {
        r.search_seconds = 0.0;
        r.n_resumed = 0;
        serde_json::to_string(&r).expect("result serializes")
    };
    let direct_norm = normalized(direct.clone());
    let direct_tps = direct.n_evaluations as f64 / direct_wall.max(1e-9);
    println!(
        "fleet bench: direct {direct_tps:.1} trials/s ({} trials, {:.2}s); \
         runner counts {runner_counts:?}",
        direct.n_evaluations, direct_wall,
    );

    let mut rows = Vec::new();
    let mut base_tps = f64::NAN;
    for &n_runners in &runner_counts {
        let data_dir = std::env::temp_dir().join(format!(
            "hpo-bench-fleet-{}-{n_runners}",
            std::process::id()
        ));
        std::fs::create_dir_all(&data_dir).expect("create bench data dir");
        let handle = serve(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: data_dir.clone(),
            slots: 1,
            checkpoint_every: 1,
            fleet: FleetConfig {
                enabled: true,
                ..FleetConfig::default()
            },
            ..ServerConfig::default()
        })
        .expect("fleet server starts");
        let addr = handle.addr().to_string();
        let client = Client::new(addr.clone());

        let stop = CancelToken::new();
        let runners: Vec<_> = (0..n_runners)
            .map(|i| {
                let config = RunnerConfig {
                    server: addr.clone(),
                    name: Some(format!("bench-runner-{i}")),
                    poll: std::time::Duration::from_millis(20),
                    heartbeat_every: std::time::Duration::from_millis(500),
                    chaos: ChaosPlan::default(),
                };
                let stop = stop.clone();
                std::thread::spawn(move || run_runner(&config, &stop).expect("runner loop"))
            })
            .collect();

        let submitted = Instant::now();
        let id = client.submit(&spec).expect("submit").id;
        let deadline = submitted + std::time::Duration::from_secs(600);
        loop {
            assert!(
                Instant::now() < deadline,
                "fleet bench timed out at {n_runners} runners"
            );
            let view = client.status(&id).expect("status");
            if view.state.status.is_terminal() {
                assert_eq!(view.state.status, hpo_server::RunStatus::Completed);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let wall = submitted.elapsed().as_secs_f64();
        let via_fleet = client.result(&id).expect("result");

        stop.cancel();
        for r in runners {
            let report = r.join().expect("runner thread");
            assert_eq!(report.exit, RunnerExit::Stopped);
        }
        handle.shutdown();
        std::fs::remove_dir_all(&data_dir).ok();

        let results_match = normalized(via_fleet.clone()) == direct_norm;
        let tps = via_fleet.n_evaluations as f64 / wall.max(1e-9);
        if base_tps.is_nan() {
            base_tps = tps;
        }
        let speedup = if base_tps > 0.0 { tps / base_tps } else { 0.0 };
        println!(
            "fleet bench: {n_runners} runner(s) {tps:.1} trials/s \
             ({} trials, {wall:.2}s, {speedup:.2}x vs {} runner), results match: {results_match}",
            via_fleet.n_evaluations, runner_counts[0],
        );
        rows.push(serde_json::json!({
            "runners": n_runners,
            "wall_seconds": wall,
            "trials": via_fleet.n_evaluations,
            "trials_per_sec": tps,
            "speedup": speedup,
            "results_match": results_match,
        }));
    }

    let report = serde_json::json!({
        "bench": "hpo",
        "mode": "fleet",
        "seed": args.seed,
        "scale": args.scale,
        "method": spec.method,
        "max_iter": spec.max_iter,
        "direct": {
            "wall_seconds": direct_wall,
            "trials": direct.n_evaluations,
            "trials_per_sec": direct_tps,
        },
        "fleet": rows,
        "latency_percentiles": latency_percentiles(),
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    write_json_atomic(out_path, text.as_bytes()).expect("write benchmark report");
    println!("wrote {out_path}");
}

fn main() {
    let args = ExpArgs::parse();
    let datasets = args.datasets_or(&[PaperDataset::Australian]);
    let out_path: String = args
        .get("out")
        .unwrap_or_else(|| "BENCH_hpo.json".to_string());
    if args.get::<String>("plugin").as_deref() == Some("true") {
        plugin_bench(&args, &out_path);
        return;
    }
    if args.get::<String>("server").as_deref() == Some("true") {
        server_smoke(&args, &out_path);
        return;
    }
    if args.get::<String>("fleet").as_deref() == Some("true") {
        fleet_bench(&args, &out_path);
        return;
    }
    let pipeline = match args
        .get::<String>("pipeline")
        .unwrap_or_else(|| "enhanced".to_string())
        .as_str()
    {
        "vanilla" => Pipeline::vanilla(),
        "enhanced" => Pipeline::enhanced(),
        other => panic!("unknown pipeline `{other}`"),
    };
    let hps: usize = args.get("hps").unwrap_or(4);
    let space = SearchSpace::mlp_table3(hps);
    let base = MlpParams {
        max_iter: args.get("max-iter").unwrap_or(10),
        ..Default::default()
    };
    let worker_counts: Vec<usize> = args
        .get::<String>("workers")
        .unwrap_or_else(|| "1,4".to_string())
        .split(',')
        .map(|w| w.trim().parse().expect("--workers expects integers"))
        .collect();
    let warm_start_mode = args
        .get::<String>("warm-start")
        .unwrap_or_else(|| "both".to_string());
    let (main_warm, compare_cold) = match warm_start_mode.as_str() {
        "both" => (true, true),
        "on" => (true, false),
        "off" => (false, false),
        other => panic!("unknown --warm-start `{other}` (expected on|off|both)"),
    };

    let logical = logical_cores();
    let physical = physical_cores();
    println!(
        "HPO benchmark: {} configurations, scale {}, seed {}, workers {:?} \
         ({physical} physical / {logical} logical cores)\n",
        space.n_configurations(),
        args.scale,
        args.seed,
        worker_counts,
    );

    let matmul = matmul_sweep(args.seed);
    println!();
    let kernels = kernel_microbench(args.seed);
    println!();
    let fold_trial = fold_workers_microbench(&args);
    println!();

    let mut rows = Vec::new();
    // Warm rows kept for the warm-vs-cold comparison pass below.
    let mut warm_rows: Vec<(String, &'static str, hpo_core::harness::RunResult)> = Vec::new();
    // (method, workers) -> trials/sec summed over datasets, for scaling.
    let mut throughput: BTreeMap<(String, usize), f64> = BTreeMap::new();
    let mut table = Table::new(&[
        "dataset",
        "method",
        "workers",
        "wall (s)",
        "trials",
        "trials/s",
        "cost (GMAC)",
        "test",
    ]);
    for ds in &datasets {
        let tt = ds.load(args.scale, args.seed);
        for (name, method) in methods() {
            for &workers in &worker_counts {
                let row = run_method_with(
                    &tt.train,
                    &tt.test,
                    &space,
                    pipeline.clone(),
                    &base,
                    &method,
                    args.seed,
                    &RunOptions {
                        workers,
                        warm_start: main_warm,
                        ..Default::default()
                    },
                );
                let trials_per_sec = if row.search_seconds > 0.0 {
                    row.n_evaluations as f64 / row.search_seconds
                } else {
                    0.0
                };
                *throughput.entry((name.to_string(), workers)).or_default() += trials_per_sec;
                table.row(vec![
                    ds.name().to_string(),
                    name.to_string(),
                    workers.to_string(),
                    format!("{:.2}", row.search_seconds),
                    row.n_evaluations.to_string(),
                    format!("{trials_per_sec:.1}"),
                    format!("{:.2}", row.search_cost_units as f64 / 1e9),
                    format!("{:.4}", row.test_score),
                ]);
                rows.push(serde_json::json!({
                    "dataset": ds.name(),
                    "method": name,
                    "pipeline": row.pipeline,
                    "workers": workers,
                    "warm_start": main_warm,
                    "wall_seconds": row.search_seconds,
                    "trials": row.n_evaluations,
                    "trials_per_sec": trials_per_sec,
                    "cost_units": row.search_cost_units,
                    "n_failures": row.n_failures,
                    "n_continued": row.n_continued,
                    "train_score": row.train_score,
                    "test_score": row.test_score,
                }));
                if compare_cold && workers == worker_counts[0] {
                    warm_rows.push((ds.name().to_string(), name, row));
                }
            }
        }
    }
    table.print();

    // Warm-vs-cold continuation comparison: re-run each method cold at the
    // first worker count and report what warm starting saved.
    let mut warm_vs_cold = Vec::new();
    if compare_cold {
        println!("\nwarm-start savings (workers {}):", worker_counts[0]);
        for (ds_name, name, warm) in &warm_rows {
            let ds = datasets
                .iter()
                .find(|d| d.name() == ds_name)
                .expect("dataset of a recorded row");
            let tt = ds.load(args.scale, args.seed);
            let (_, method) = methods()
                .into_iter()
                .find(|(n, _)| n == name)
                .expect("method of a recorded row");
            let cold = run_method_with(
                &tt.train,
                &tt.test,
                &space,
                pipeline.clone(),
                &base,
                &method,
                args.seed,
                &RunOptions {
                    workers: worker_counts[0],
                    warm_start: false,
                    ..Default::default()
                },
            );
            let cost_saved_pct = if cold.search_cost_units > 0 {
                100.0 * (1.0 - warm.search_cost_units as f64 / cold.search_cost_units as f64)
            } else {
                0.0
            };
            let wall_saved_pct = if cold.search_seconds > 0.0 {
                100.0 * (1.0 - warm.search_seconds / cold.search_seconds)
            } else {
                0.0
            };
            println!(
                "  {ds_name:<12} {name:<8} cost {:.2} -> {:.2} GMAC ({cost_saved_pct:+.1}% saved), \
                 wall {:.2}s -> {:.2}s ({wall_saved_pct:+.1}%), {} trials continued",
                cold.search_cost_units as f64 / 1e9,
                warm.search_cost_units as f64 / 1e9,
                cold.search_seconds,
                warm.search_seconds,
                warm.n_continued,
            );
            warm_vs_cold.push(serde_json::json!({
                "dataset": ds_name,
                "method": name,
                "workers": worker_counts[0],
                "cold_cost_units": cold.search_cost_units,
                "warm_cost_units": warm.search_cost_units,
                "cost_units_saved_pct": cost_saved_pct,
                "cold_wall_seconds": cold.search_seconds,
                "warm_wall_seconds": warm.search_seconds,
                "wall_seconds_saved_pct": wall_saved_pct,
                "n_continued": warm.n_continued,
            }));
        }
    }

    // Per-method scaling: trials/sec at each worker count and the speedup
    // over the single-worker baseline.
    let mut scaling = Vec::new();
    for (name, _) in methods() {
        let base_tps = throughput
            .get(&(name.to_string(), worker_counts[0]))
            .copied()
            .unwrap_or(0.0);
        let per_workers: Vec<serde_json::Value> = worker_counts
            .iter()
            .map(|&w| {
                let tps = throughput
                    .get(&(name.to_string(), w))
                    .copied()
                    .unwrap_or(0.0);
                serde_json::json!({
                    "workers": w,
                    "trials_per_sec": tps,
                    "speedup": if base_tps > 0.0 { tps / base_tps } else { 0.0 },
                })
            })
            .collect();
        scaling.push(serde_json::json!({
            "method": name,
            "per_workers": per_workers,
        }));
    }
    if worker_counts.len() > 1 {
        println!("\nparallel scaling (trials/s, speedup vs {} worker):", {
            worker_counts[0]
        });
        for entry in &scaling {
            let method = entry["method"].as_str().unwrap_or("?");
            let parts: Vec<String> = entry["per_workers"]
                .as_array()
                .map(|a| {
                    a.iter()
                        .map(|p| {
                            format!(
                                "{}w {:.1}/s ({:.2}x)",
                                p["workers"], p["trials_per_sec"], p["speedup"]
                            )
                        })
                        .collect()
                })
                .unwrap_or_default();
            println!("  {method:<8} {}", parts.join("  "));
        }
    }

    println!();
    let latency = latency_percentiles();
    let metrics = obs::global_metrics().snapshot();
    let report = serde_json::json!({
        "bench": "hpo",
        "seed": args.seed,
        "scale": args.scale,
        "n_configurations": space.n_configurations(),
        "worker_counts": worker_counts,
        "warm_start": warm_start_mode,
        "warm_vs_cold": warm_vs_cold,
        "physical_cores": physical,
        "logical_cores": logical,
        "matmul": matmul,
        "kernels": kernels,
        "single_trial_folds": fold_trial,
        "rows": rows,
        "scaling": scaling,
        "latency_percentiles": latency,
        "metrics": metrics,
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    write_json_atomic(&out_path, text.as_bytes()).expect("write benchmark report");
    println!("\nwrote {out_path}");
}
