//! Table IV: the full HPO comparison.
//!
//! For each dataset, runs the paper's seven arms — random, SHA, SHA+, HB,
//! HB+, BOHB, BOHB+ — over `--repeats` seeds and reports train score, test
//! score, wall-clock search seconds and the deterministic search cost, each
//! as mean ± std. A `+` marks the enhanced-pipeline variants.
//!
//! Defaults keep the run laptop-sized (4 datasets, 4 of the 8
//! hyperparameters = 162 configurations as in the paper, scale 0.1).
//! Full reproduction:
//!
//! ```text
//! cargo run --release -p hpo-bench --bin exp_table4_hpo_comparison -- \
//!     --datasets all --scale 1.0 --repeats 5
//! ```

use hpo_bench::args::ExpArgs;
use hpo_bench::report::{json_line, MeanStd, Table};
use hpo_core::harness::table4_arms;
use hpo_core::space::SearchSpace;
use hpo_data::synth::catalog::PaperDataset;
use hpo_models::mlp::MlpParams;
use std::collections::BTreeMap;

fn main() {
    let args = ExpArgs::parse();
    let datasets = args.datasets_or(&[
        PaperDataset::Australian,
        PaperDataset::Machine,
        PaperDataset::Satimage,
        PaperDataset::KcHouse,
    ]);
    let n_hps: usize = args.get("hps").unwrap_or(4);
    let space = SearchSpace::mlp_table3(n_hps);
    let max_iter: usize = args.get("max-iter").unwrap_or(15);
    let base = MlpParams {
        max_iter,
        ..Default::default()
    };

    println!(
        "Table IV reproduction: {} configurations, {} repeats, scale {}\n",
        space.n_configurations(),
        args.repeats,
        args.scale
    );

    for ds in datasets {
        // metric -> arm label -> repetition values
        let mut acc: BTreeMap<&'static str, BTreeMap<String, Vec<f64>>> = BTreeMap::new();
        let mut score_kind = String::new();
        for rep in 0..args.repeats {
            let seed = args.seed + rep as u64;
            let tt = ds.load(args.scale, seed);
            let rows = table4_arms(&tt.train, &tt.test, &space, &base, seed);
            for row in rows {
                let label = if row.pipeline == "enhanced" {
                    format!("{}+", row.method)
                } else {
                    row.method.clone()
                };
                score_kind = row.score_kind.clone();
                acc.entry("train")
                    .or_default()
                    .entry(label.clone())
                    .or_default()
                    .push(row.train_score);
                acc.entry("test")
                    .or_default()
                    .entry(label.clone())
                    .or_default()
                    .push(row.test_score);
                acc.entry("time")
                    .or_default()
                    .entry(label.clone())
                    .or_default()
                    .push(row.search_seconds);
                acc.entry("cost")
                    .or_default()
                    .entry(label.clone())
                    .or_default()
                    .push(row.search_cost_units as f64);
                json_line(
                    args.json,
                    &serde_json::json!({
                        "experiment": "table4",
                        "dataset": ds.name(),
                        "seed": seed,
                        "arm": label,
                        "row": row,
                    }),
                );
            }
        }

        println!("== {} (metric: {}) ==", ds.name(), score_kind);
        let arm_order = ["random", "SHA", "SHA+", "HB", "HB+", "BOHB", "BOHB+"];
        let mut table = Table::new(&["arm", "train (%)", "test (%)", "time (s)", "cost (GMAC)"]);
        for arm in arm_order {
            let get = |metric: &str| -> MeanStd {
                MeanStd::of(
                    acc.get(metric)
                        .and_then(|m| m.get(arm))
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                )
            };
            let cost = get("cost");
            table.row(vec![
                arm.to_string(),
                get("train").fmt_pct(2),
                get("test").fmt_pct(2),
                get("time").fmt(1),
                format!("{:.2}±{:.2}", cost.mean / 1e9, cost.std / 1e9),
            ]);
        }
        table.print();

        // The paper's headline checks: does "+" beat vanilla on test score?
        for method in ["SHA", "HB", "BOHB"] {
            let vanilla = MeanStd::of(acc["test"].get(method).map(Vec::as_slice).unwrap_or(&[]));
            let plus = MeanStd::of(
                acc["test"]
                    .get(&format!("{method}+"))
                    .map(Vec::as_slice)
                    .unwrap_or(&[]),
            );
            let delta = (plus.mean - vanilla.mean) * 100.0;
            println!(
                "   {method}+ vs {method}: {delta:+.2}pp test, std {:.2} -> {:.2}",
                vanilla.std * 100.0,
                plus.std * 100.0
            );
        }
        println!();
    }
}
