//! Table V: the instance-grouping ablation.
//!
//! Isolates Operation 1: both arms use stratified folds and the plain mean
//! metric; the vanilla arm stratifies on **labels**, ours stratifies on the
//! **groups** built from features + labels. Ratios 10% and 100%, reporting
//! the recommended configuration's test score and the ranking nDCG.
//!
//! ```text
//! cargo run --release -p hpo-bench --bin exp_table5_grouping_ablation -- \
//!     --datasets australian,splice,a9a,gisette,satimage,usps
//! ```

use hpo_bench::args::ExpArgs;
use hpo_bench::cv_eval::{evaluate_cv_method, ground_truth};
use hpo_bench::report::{json_line, MeanStd, Table};
use hpo_core::pipeline::Pipeline;
use hpo_core::space::SearchSpace;
use hpo_data::synth::catalog::PaperDataset;
use hpo_metrics::EvalMetric;
use hpo_models::mlp::MlpParams;
use hpo_sampling::groups::GroupingConfig;
use hpo_sampling::FoldStrategy;

fn main() {
    let args = ExpArgs::parse();
    let datasets = args.datasets_or(&[
        PaperDataset::Australian,
        PaperDataset::Splice,
        PaperDataset::Satimage,
    ]);
    let space = SearchSpace::mlp_cv18();
    let max_iter: usize = args.get("max-iter").unwrap_or(12);
    let base = MlpParams {
        max_iter,
        ..Default::default()
    };

    // Both arms: 5 stratified folds, mean metric. Only the stratification
    // variable differs — labels vs groups.
    let vanilla = Pipeline {
        fold_strategy: FoldStrategy::StratifiedLabel { k: 5 },
        metric: EvalMetric::MeanOnly,
        grouping: None,
        per_config_folds: true,
        label: "vanilla".into(),
    };
    let ours = Pipeline {
        fold_strategy: FoldStrategy::StratifiedGroup { k: 5 },
        metric: EvalMetric::MeanOnly,
        grouping: Some(GroupingConfig::default()),
        per_config_folds: true,
        label: "ours".into(),
    };

    println!(
        "Table V reproduction: grouping ablation (stratified folds + mean metric both arms)\n"
    );
    let mut table = Table::new(&["dataset", "ratio", "method", "test (%)", "nDCG"]);
    for ds in datasets {
        for &ratio in &[0.1, 1.0] {
            for (name, pipeline) in [("vanilla", &vanilla), ("ours", &ours)] {
                let mut scores = Vec::new();
                let mut ndcgs = Vec::new();
                for rep in 0..args.repeats {
                    let seed = args.seed + rep as u64;
                    let tt = ds.load(args.scale, seed);
                    let truth = ground_truth(&tt.train, &tt.test, &space, &base, seed);
                    let r = evaluate_cv_method(
                        &tt.train,
                        &space,
                        &base,
                        pipeline.clone(),
                        ratio,
                        &truth,
                        seed,
                    );
                    scores.push(r.recommended_test_score);
                    ndcgs.push(r.ndcg);
                    json_line(
                        args.json,
                        &serde_json::json!({
                            "experiment": "table5",
                            "dataset": ds.name(),
                            "ratio": ratio,
                            "method": name,
                            "seed": seed,
                            "result": r,
                        }),
                    );
                }
                table.row(vec![
                    ds.name().to_string(),
                    format!("{:.0}%", ratio * 100.0),
                    name.to_string(),
                    MeanStd::of(&scores).fmt_pct(2),
                    format!("{:.3}", MeanStd::of(&ndcgs).mean),
                ]);
            }
        }
    }
    table.print();
}
