//! Proposition 1: sampling stability of group-based subset sampling.
//!
//! Sweeps the group-separation parameter ε and prints, for a balanced binary
//! dataset, (a) the probability that the sampled subset matches the overall
//! class balance exactly, and (b) the variance of the positive count —
//! random sampling is the ε = 0 row. The paper's claim is that grouping
//! (ε > 0) is never worse and strictly better once groups actually differ.
//!
//! ```text
//! cargo run --release -p hpo-bench --bin exp_prop1_stability [--n N]
//! ```

use hpo_bench::args::ExpArgs;
use hpo_bench::report::Table;
use hpo_sampling::stability::{
    group_sampling_variance, match_probability, random_sampling_variance,
};

fn main() {
    let args = ExpArgs::parse();
    let n: usize = args.get("n").unwrap_or(40);
    let p = 0.5;

    println!("Proposition 1: subset of n = {n} from a balanced binary dataset (p = {p})\n");
    let mut table = Table::new(&[
        "epsilon",
        "P(match overall balance)",
        "Var(positive count)",
        "vs random",
    ]);
    let random_match = match_probability(n, p, None);
    let random_var = random_sampling_variance(n, p);
    table.row(vec![
        "random".into(),
        format!("{random_match:.4}"),
        format!("{random_var:.3}"),
        "-".into(),
    ]);
    for eps in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let m = match_probability(n, p, Some(eps));
        let v = group_sampling_variance(n, p, eps);
        table.row(vec![
            format!("{eps:.1}"),
            format!("{m:.4}"),
            format!("{v:.3}"),
            format!("{:+.1}% match", (m / random_match - 1.0) * 100.0),
        ]);
    }
    table.print();
    println!(
        "\nanalytic identity: Var_group = Var_random − n·ε² (grouping strictly reduces variance)"
    );
}
