//! Figure 4: SHA vs SHA+ as the configuration count grows.
//!
//! Two sweeps on the `australian` stand-in, as in the paper:
//!
//! 1. **hyperparameter count** — Table III rows are added one at a time
//!    (1 → 8), growing the grid from 6 to 8 748 configurations;
//! 2. **model complexity** — hidden-layer widths [10..50] crossed with
//!    increasing depth.
//!
//! For each point: test accuracy and search time of SHA and SHA+, averaged
//! over `--repeats` seeds.
//!
//! ```text
//! cargo run --release -p hpo-bench --bin exp_fig4_config_scaling -- --repeats 3
//! ```

use hpo_bench::args::ExpArgs;
use hpo_bench::report::{json_line, MeanStd, Table};
use hpo_core::harness::{run_method, Method};
use hpo_core::pipeline::Pipeline;
use hpo_core::sha::ShaConfig;
use hpo_core::space::SearchSpace;
use hpo_data::synth::catalog::PaperDataset;
use hpo_models::mlp::MlpParams;

fn main() {
    let args = ExpArgs::parse();
    let max_hps: usize = args.get("max-hps").unwrap_or(6);
    let max_iter: usize = args.get("max-iter").unwrap_or(12);
    let base = MlpParams {
        max_iter,
        ..Default::default()
    };

    println!(
        "Fig. 4 reproduction on `australian` (scale {}):\n",
        args.scale.max(1.0)
    );

    // --- Sweep 1: number of hyperparameters -------------------------------
    println!("(a) accuracy & time vs number of hyperparameters");
    let mut table = Table::new(&[
        "#HPs",
        "configs",
        "SHA acc (%)",
        "SHA+ acc (%)",
        "SHA time (s)",
        "SHA+ time (s)",
    ]);
    for n_hps in 1..=max_hps {
        let space = SearchSpace::mlp_table3(n_hps);
        let point = sweep_point(&space, &base, &args, &format!("hps={n_hps}"));
        table.row(vec![
            n_hps.to_string(),
            space.n_configurations().to_string(),
            point.sha_acc.fmt_pct(2),
            point.sha_plus_acc.fmt_pct(2),
            point.sha_time.fmt(1),
            point.sha_plus_time.fmt(1),
        ]);
    }
    table.print();

    // --- Sweep 2: model complexity ----------------------------------------
    println!("\n(b) accuracy & time vs model complexity (widths 10..50 × depth)");
    let mut table = Table::new(&[
        "layers",
        "configs",
        "SHA acc (%)",
        "SHA+ acc (%)",
        "SHA time (s)",
        "SHA+ time (s)",
    ]);
    let max_layers: usize = args.get("max-layers").unwrap_or(3);
    for depth in 1..=max_layers {
        let space = SearchSpace::mlp_complexity(&[10, 20, 30, 40, 50], depth);
        let point = sweep_point(&space, &base, &args, &format!("depth={depth}"));
        table.row(vec![
            depth.to_string(),
            space.n_configurations().to_string(),
            point.sha_acc.fmt_pct(2),
            point.sha_plus_acc.fmt_pct(2),
            point.sha_time.fmt(1),
            point.sha_plus_time.fmt(1),
        ]);
    }
    table.print();
}

struct SweepPoint {
    sha_acc: MeanStd,
    sha_plus_acc: MeanStd,
    sha_time: MeanStd,
    sha_plus_time: MeanStd,
}

fn sweep_point(
    space: &SearchSpace,
    base: &MlpParams,
    args: &hpo_bench::args::ExpArgs,
    tag: &str,
) -> SweepPoint {
    let mut acc = (Vec::new(), Vec::new());
    let mut time = (Vec::new(), Vec::new());
    for rep in 0..args.repeats {
        let seed = args.seed + rep as u64;
        // australian has no test split in the paper; the catalog 80/20s it.
        let tt = PaperDataset::Australian.load(args.scale.max(1.0), seed);
        for (enhanced, accs, times) in [
            (false, &mut acc.0, &mut time.0),
            (true, &mut acc.1, &mut time.1),
        ] {
            let pipeline = if enhanced {
                Pipeline::enhanced()
            } else {
                Pipeline::vanilla()
            };
            let row = run_method(
                &tt.train,
                &tt.test,
                space,
                pipeline,
                base,
                &Method::Sha(ShaConfig::default()),
                seed,
            );
            accs.push(row.test_score);
            times.push(row.search_seconds);
            json_line(
                args.json,
                &serde_json::json!({
                    "experiment": "fig4",
                    "point": tag,
                    "seed": seed,
                    "row": row,
                }),
            );
        }
    }
    SweepPoint {
        sha_acc: MeanStd::of(&acc.0),
        sha_plus_acc: MeanStd::of(&acc.1),
        sha_time: MeanStd::of(&time.0),
        sha_plus_time: MeanStd::of(&time.1),
    }
}
