//! Aggregation and table rendering for experiment output.

/// Mean and population standard deviation of repeated measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanStd {
    /// Mean over repetitions.
    pub mean: f64,
    /// Population standard deviation over repetitions.
    pub std: f64,
}

impl MeanStd {
    /// Aggregates a slice of repetition values.
    pub fn of(values: &[f64]) -> MeanStd {
        if values.is_empty() {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        MeanStd {
            mean,
            std: var.sqrt(),
        }
    }

    /// Renders as `mm.mm±ss.ss` with the given decimal places.
    pub fn fmt(&self, decimals: usize) -> String {
        format!("{:.*}±{:.*}", decimals, self.mean, decimals, self.std)
    }

    /// Renders as a percentage (`×100`) with the given decimal places.
    pub fn fmt_pct(&self, decimals: usize) -> String {
        format!(
            "{:.*}±{:.*}",
            decimals,
            self.mean * 100.0,
            decimals,
            self.std * 100.0
        )
    }
}

/// A simple aligned-text table builder for experiment output.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints a JSON line when `--json` is active.
pub fn json_line<T: serde::Serialize>(enabled: bool, value: &T) {
    if enabled {
        println!(
            "{}",
            serde_json::to_string(value).expect("experiment rows serialize")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_aggregates() {
        let ms = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((ms.mean - 5.0).abs() < 1e-12);
        assert!((ms.std - 2.0).abs() < 1e-12);
        assert_eq!(ms.fmt(1), "5.0±2.0");
        assert_eq!(MeanStd::of(&[0.975]).fmt_pct(2), "97.50±0.00");
    }

    #[test]
    fn empty_aggregation_is_zero() {
        let ms = MeanStd::of(&[]);
        assert_eq!(ms.mean, 0.0);
        assert_eq!(ms.std, 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a    "));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
