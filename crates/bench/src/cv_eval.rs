//! The §IV-C cross-validation experiment core.
//!
//! Given a train/test pair and a configuration space, the experiment:
//!
//! 1. computes the **ground truth**: every configuration's test score after
//!    training on the full training set (expensive — computed once and
//!    shared across methods and subset ratios);
//! 2. for each CV method and subset ratio, scores every configuration by
//!    cross-validation on a `ratio`-sized subset;
//! 3. reports the **test score of the recommended configuration** (argmax of
//!    CV scores) and the **nDCG** of the CV ranking against the ground
//!    truth — exactly the two panels of the paper's Fig. 5.

use hpo_core::evaluator::{fit_and_score, CvEvaluator, ScoreKind};
use hpo_core::pipeline::Pipeline;
use hpo_core::space::SearchSpace;
use hpo_data::dataset::Dataset;
use hpo_data::rng::derive_seed;
use hpo_metrics::ranking::ndcg_rank_graded;
use hpo_models::mlp::MlpParams;

/// Ground truth: per-configuration test scores after full-data training.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// `actual[i]` = test score of `space.configuration(i)`.
    pub actual: Vec<f64>,
    /// The score kind used.
    pub score_kind: ScoreKind,
}

/// Computes the ground-truth ranking of all configurations.
pub fn ground_truth(
    train: &Dataset,
    test: &Dataset,
    space: &SearchSpace,
    base_params: &MlpParams,
    seed: u64,
) -> GroundTruth {
    let score_kind = ScoreKind::for_dataset(train);
    let actual = space
        .all_configurations()
        .iter()
        .map(|cfg| {
            let mut params = space.to_params(cfg, base_params);
            params.seed = derive_seed(seed, 0x9_0000);
            fit_and_score(train, test, &params, score_kind).test_score
        })
        .collect();
    GroundTruth { actual, score_kind }
}

/// Result of one CV method at one subset ratio.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CvMethodResult {
    /// Test score of the configuration the CV scores recommend.
    pub recommended_test_score: f64,
    /// nDCG of the CV ranking vs the ground-truth ranking.
    pub ndcg: f64,
}

/// Runs one CV method (a [`Pipeline`]) at one subset ratio against a
/// precomputed ground truth.
pub fn evaluate_cv_method(
    train: &Dataset,
    space: &SearchSpace,
    base_params: &MlpParams,
    pipeline: Pipeline,
    ratio: f64,
    truth: &GroundTruth,
    seed: u64,
) -> CvMethodResult {
    assert!((0.0..=1.0).contains(&ratio), "ratio must be in (0,1]");
    let evaluator = CvEvaluator::new(train, pipeline, base_params.clone(), seed);
    let budget = ((train.n_instances() as f64) * ratio).round() as usize;
    let ratio_stream = (ratio * 1e6) as u64;
    let predicted: Vec<f64> = space
        .all_configurations()
        .iter()
        .enumerate()
        .map(|(i, cfg)| {
            let params = space.to_params(cfg, base_params);
            // The pipeline decides whether configurations share folds or
            // draw their own (Pipeline::per_config_folds; the paper's
            // Algorithm 1 redraws per configuration).
            evaluator
                .evaluate(
                    &params,
                    budget,
                    evaluator.fold_stream(derive_seed(seed, 0xCF), ratio_stream, i as u64),
                )
                .score
        })
        .collect();
    let best = hpo_data::stats::argmax(&predicted).expect("non-empty space");
    CvMethodResult {
        recommended_test_score: truth.actual[best],
        ndcg: ndcg_rank_graded(&predicted, &truth.actual),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpo_data::split::stratified_train_test_split;
    use hpo_data::synth::{make_classification, ClassificationSpec};

    fn pair() -> (Dataset, Dataset) {
        let data = make_classification(
            &ClassificationSpec {
                n_instances: 260,
                n_features: 5,
                n_informative: 5,
                label_purity: 0.95,
                blob_spread: 0.3,
                ..Default::default()
            },
            1,
        );
        let mut rng = hpo_data::rng::rng_from_seed(1);
        let tt = stratified_train_test_split(&data, 0.25, &mut rng).unwrap();
        (tt.train, tt.test)
    }

    fn tiny_space() -> SearchSpace {
        use hpo_core::space::Dimension;
        use hpo_models::activation::Activation;
        SearchSpace::new(vec![
            Dimension::HiddenLayers(vec![vec![4], vec![8]]),
            Dimension::Activation(vec![Activation::Tanh, Activation::Relu]),
        ])
    }

    fn quick_base() -> MlpParams {
        MlpParams {
            max_iter: 5,
            ..Default::default()
        }
    }

    #[test]
    fn ground_truth_scores_every_config() {
        let (train, test) = pair();
        let space = tiny_space();
        let truth = ground_truth(&train, &test, &space, &quick_base(), 1);
        assert_eq!(truth.actual.len(), 4);
        assert!(truth.actual.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn cv_method_result_is_within_truth_range() {
        let (train, test) = pair();
        let space = tiny_space();
        let truth = ground_truth(&train, &test, &space, &quick_base(), 2);
        let result = evaluate_cv_method(
            &train,
            &space,
            &quick_base(),
            Pipeline::vanilla(),
            0.5,
            &truth,
            2,
        );
        let min = truth.actual.iter().copied().fold(f64::INFINITY, f64::min);
        let max = truth
            .actual
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(result.recommended_test_score >= min - 1e-12);
        assert!(result.recommended_test_score <= max + 1e-12);
        assert!((0.0..=1.0).contains(&result.ndcg));
    }

    #[test]
    fn enhanced_pipeline_also_runs() {
        let (train, test) = pair();
        let space = tiny_space();
        let truth = ground_truth(&train, &test, &space, &quick_base(), 3);
        let result = evaluate_cv_method(
            &train,
            &space,
            &quick_base(),
            Pipeline::enhanced(),
            0.2,
            &truth,
            3,
        );
        assert!((0.0..=1.0).contains(&result.ndcg));
    }
}
