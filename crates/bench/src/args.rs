//! Minimal `--flag value` argument parsing for the experiment binaries.

use hpo_data::synth::catalog::PaperDataset;
use std::collections::HashMap;

/// Parsed experiment arguments.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Base seed; repetition `r` uses `seed + r`.
    pub seed: u64,
    /// Number of repetitions to average over (paper: 5).
    pub repeats: usize,
    /// Dataset size multiplier applied to the catalog baselines.
    pub scale: f64,
    /// Datasets to run on; `None` means the binary's default subset.
    pub datasets: Option<Vec<PaperDataset>>,
    /// Emit one JSON object per result row on stdout in addition to tables.
    pub json: bool,
    /// All raw flags, for binary-specific extras.
    raw: HashMap<String, String>,
}

impl ExpArgs {
    /// Parses `std::env::args()`. Recognized flags: `--seed N`,
    /// `--repeats N`, `--scale F`, `--datasets a,b,c|all`, `--json`.
    /// Unknown `--key value` pairs are kept for [`ExpArgs::get`].
    ///
    /// # Panics
    /// Panics with a usage message on malformed values.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut raw = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                panic!("unexpected positional argument `{arg}`");
            };
            let value = match iter.peek() {
                Some(v) if !v.starts_with("--") => iter.next().expect("peeked"),
                _ => "true".to_string(), // boolean flag
            };
            raw.insert(key.to_string(), value);
        }
        let seed = raw
            .get("seed")
            .map(|v| v.parse().expect("--seed expects an integer"))
            .unwrap_or(42);
        let repeats = raw
            .get("repeats")
            .map(|v| v.parse().expect("--repeats expects an integer"))
            .unwrap_or(3);
        let scale = raw
            .get("scale")
            .map(|v| v.parse().expect("--scale expects a float"))
            .unwrap_or(0.1);
        let datasets = raw.get("datasets").map(|spec| {
            if spec == "all" {
                PaperDataset::ALL.to_vec()
            } else {
                spec.split(',')
                    .map(|name| {
                        PaperDataset::from_name(name.trim())
                            .unwrap_or_else(|| panic!("unknown dataset `{name}`"))
                    })
                    .collect()
            }
        });
        let json = raw.get("json").map(|v| v == "true").unwrap_or(false);
        ExpArgs {
            seed,
            repeats,
            scale,
            datasets,
            json,
            raw,
        }
    }

    /// Binary-specific extra flag, parsed on demand.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.raw.get(key).map(|v| {
            v.parse()
                .ok()
                .unwrap_or_else(|| panic!("bad value for --{key}"))
        })
    }

    /// The datasets to run: explicit `--datasets`, else the given default.
    pub fn datasets_or(&self, default: &[PaperDataset]) -> Vec<PaperDataset> {
        self.datasets.clone().unwrap_or_else(|| default.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ExpArgs {
        ExpArgs::from_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults_apply() {
        let a = parse("");
        assert_eq!(a.seed, 42);
        assert_eq!(a.repeats, 3);
        assert!((a.scale - 0.1).abs() < 1e-12);
        assert!(a.datasets.is_none());
        assert!(!a.json);
    }

    #[test]
    fn flags_override() {
        let a = parse("--seed 7 --repeats 5 --scale 0.5 --json");
        assert_eq!(a.seed, 7);
        assert_eq!(a.repeats, 5);
        assert!((a.scale - 0.5).abs() < 1e-12);
        assert!(a.json);
    }

    #[test]
    fn dataset_lists_parse() {
        let a = parse("--datasets australian,usps");
        let ds = a.datasets.unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].name(), "australian");
        let all = parse("--datasets all").datasets.unwrap();
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn extra_flags_available() {
        let a = parse("--configs 64");
        assert_eq!(a.get::<usize>("configs"), Some(64));
        assert_eq!(a.get::<usize>("missing"), None);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn bad_dataset_panics() {
        parse("--datasets nope");
    }
}
