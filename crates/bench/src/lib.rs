//! Experiment harness shared by the per-table/per-figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §4 for the index and `EXPERIMENTS.md` for recorded
//! outputs). This library holds the shared plumbing:
//!
//! * [`args`] — a tiny `--flag value` CLI parser (seed / repeats / scale /
//!   datasets) so the binaries stay dependency-free.
//! * [`report`] — mean ± std aggregation and aligned table printing.
//! * [`cv_eval`] — the §IV-C cross-validation experiment core: ground-truth
//!   config ranking, per-method recommendation score and nDCG.

#![warn(missing_docs)]

pub mod args;
pub mod cv_eval;
pub mod report;
