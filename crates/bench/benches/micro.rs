//! Micro-benchmarks backing the paper's §III-E cost analysis.
//!
//! The paper argues the grouping overhead (k-means + Operation 1) is
//! negligible next to a single training epoch ("equivalent to training a
//! hidden layer with 25 neurons for one epoch"). These benches measure the
//! pieces directly: k-means, balanced re-clustering (the `r_group` ablation),
//! GenGroups, GenFolds vs the vanilla fold builders, one MLP epoch, the β(γ)
//! evaluation, nDCG, and a small SHA end-to-end run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use hpo_cluster::balanced::{balanced_kmeans, BalancedKMeansConfig};
use hpo_cluster::kmeans::{kmeans, KMeansConfig};
use hpo_core::evaluator::CvEvaluator;
use hpo_core::pipeline::Pipeline;
use hpo_core::sha::{successive_halving, ShaConfig};
use hpo_core::space::SearchSpace;
use hpo_data::rng::rng_from_seed;
use hpo_data::synth::{make_classification, ClassificationSpec};
use hpo_metrics::ranking::ndcg;
use hpo_metrics::score::beta_weight;
use hpo_models::activation::Activation;
use hpo_models::loss::{one_hot, OutputLoss};
use hpo_models::mlp::network::Network;
use hpo_models::mlp::MlpParams;
use hpo_sampling::folds::{gen_folds, GenFoldsConfig};
use hpo_sampling::groups::{build_grouping, gen_groups, GroupingConfig};
use hpo_sampling::kfold::{random_kfold, stratified_kfold};

fn bench_dataset(n: usize) -> hpo_data::Dataset {
    make_classification(
        &ClassificationSpec {
            n_instances: n,
            n_features: 20,
            n_informative: 12,
            n_classes: 2,
            n_blobs: 3,
            ..Default::default()
        },
        7,
    )
}

fn clustering(c: &mut Criterion) {
    let data = bench_dataset(2000);
    let mut g = c.benchmark_group("clustering");
    g.bench_function("kmeans_n2000_f20_k3", |b| {
        b.iter(|| {
            kmeans(
                black_box(data.x()),
                &KMeansConfig {
                    k: 3,
                    max_iters: 10,
                    ..Default::default()
                },
            )
        })
    });
    // Ablation: the paper's r_group re-clustering loop on vs off.
    g.bench_function("balanced_kmeans_rgroup_0.8", |b| {
        b.iter(|| {
            balanced_kmeans(
                black_box(data.x()),
                &BalancedKMeansConfig {
                    k: 3,
                    r_group: 0.8,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("balanced_kmeans_rgroup_off", |b| {
        b.iter(|| {
            balanced_kmeans(
                black_box(data.x()),
                &BalancedKMeansConfig {
                    k: 3,
                    r_group: 0.0,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}

fn grouping_and_folds(c: &mut Criterion) {
    let data = bench_dataset(2000);
    let mut g = c.benchmark_group("sampling");
    g.bench_function("gen_groups_n2000", |b| {
        let clusters: Vec<usize> = (0..2000).map(|i| i % 3).collect();
        let classes: Vec<usize> = (0..2000).map(|i| i % 2).collect();
        b.iter(|| gen_groups(black_box(&clusters), black_box(&classes), 3, 2))
    });
    g.bench_function("build_grouping_full_pipeline", |b| {
        b.iter(|| build_grouping(black_box(&data), &GroupingConfig::default()))
    });

    let grouping = build_grouping(&data, &GroupingConfig::default());
    let labels: Vec<usize> = data.y().iter().map(|&y| y as usize).collect();
    g.bench_function("gen_folds_budget400", |b| {
        b.iter_batched(
            || rng_from_seed(1),
            |mut rng| {
                gen_folds(
                    black_box(&grouping),
                    400,
                    &GenFoldsConfig::default(),
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("random_kfold_budget400", |b| {
        b.iter_batched(
            || rng_from_seed(1),
            |mut rng| random_kfold(2000, 400, 5, &mut rng),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("stratified_kfold_budget400", |b| {
        b.iter_batched(
            || rng_from_seed(1),
            |mut rng| stratified_kfold(black_box(&labels), 2, 400, 5, &mut rng),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn mlp_epoch(c: &mut Criterion) {
    // The paper's yardstick: grouping cost vs one training epoch.
    let data = bench_dataset(2000);
    let targets = one_hot(data.y(), 2);
    let mut g = c.benchmark_group("mlp");
    g.bench_function("epoch_fullbatch_n2000_h25", |b| {
        let net = Network::new(
            vec![20, 25, 2],
            Activation::Relu,
            OutputLoss::SoftmaxCrossEntropy,
            1,
        );
        b.iter(|| {
            let n = black_box(&net);
            n.loss_grad(data.x(), &targets, 1e-4)
        })
    });
    g.bench_function("forward_n2000_h25", |b| {
        let net = Network::new(
            vec![20, 25, 2],
            Activation::Relu,
            OutputLoss::SoftmaxCrossEntropy,
            1,
        );
        b.iter(|| black_box(&net).predict_raw(data.x()))
    });
    g.finish();
}

fn metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    g.bench_function("beta_weight", |b| {
        b.iter(|| beta_weight(black_box(12.5), black_box(10.0)))
    });
    let mut rng = rng_from_seed(3);
    use rand::Rng;
    let pred: Vec<f64> = (0..200).map(|_| rng.gen()).collect();
    let actual: Vec<f64> = (0..200).map(|_| rng.gen()).collect();
    g.bench_function("ndcg_200", |b| {
        b.iter(|| ndcg(black_box(&pred), black_box(&actual)))
    });
    g.finish();
}

fn sha_end_to_end(c: &mut Criterion) {
    let data = bench_dataset(400);
    let base = MlpParams {
        hidden_layer_sizes: vec![8],
        max_iter: 3,
        ..Default::default()
    };
    let space = SearchSpace::mlp_cv18();
    let candidates: Vec<_> = (0..8).map(|i| space.configuration(i)).collect();
    let mut g = c.benchmark_group("sha");
    g.sample_size(10);
    for (label, pipeline) in [
        ("vanilla", Pipeline::vanilla()),
        ("enhanced", Pipeline::enhanced()),
    ] {
        let evaluator = CvEvaluator::new(&data, pipeline, base.clone(), 1);
        g.bench_function(format!("sha8_{label}"), |b| {
            b.iter(|| {
                successive_halving(
                    black_box(&evaluator),
                    &space,
                    &candidates,
                    &base,
                    &ShaConfig::default(),
                    0,
                )
            })
        });
    }
    g.finish();
}

fn observability_overhead(c: &mut Criterion) {
    // The §5.6 budget: a disabled recorder must keep the observed stack
    // within ~2% of the bare evaluator on an end-to-end SHA run.
    use hpo_core::obs::{ObservedEvaluator, Recorder, RunEvent};
    let data = bench_dataset(400);
    let base = MlpParams {
        hidden_layer_sizes: vec![8],
        max_iter: 3,
        ..Default::default()
    };
    let space = SearchSpace::mlp_cv18();
    let candidates: Vec<_> = (0..8).map(|i| space.configuration(i)).collect();
    let evaluator = CvEvaluator::new(&data, Pipeline::vanilla(), base.clone(), 1);
    let mut g = c.benchmark_group("observability");
    g.sample_size(10);
    g.bench_function("sha8_bare", |b| {
        b.iter(|| {
            successive_halving(
                black_box(&evaluator),
                &space,
                &candidates,
                &base,
                &ShaConfig::default(),
                0,
            )
        })
    });
    let observed = ObservedEvaluator::new(&evaluator, Recorder::disabled());
    g.bench_function("sha8_observed_disabled", |b| {
        b.iter(|| {
            successive_halving(
                black_box(&observed),
                &space,
                &candidates,
                &base,
                &ShaConfig::default(),
                0,
            )
        })
    });
    let disabled = Recorder::disabled();
    g.bench_function("emit_disabled", |b| {
        b.iter(|| {
            black_box(&disabled).emit(RunEvent::TrialStarted {
                trial: 0,
                budget: 400,
                stream: 7,
            })
        })
    });
    g.finish();
}

fn alternative_clusterers(c: &mut Criterion) {
    // The paper's §III-A alternatives; O(n²), so benched at smaller n.
    use hpo_cluster::affinity::{affinity_propagation, AffinityConfig};
    use hpo_cluster::meanshift::{estimate_bandwidth, mean_shift, MeanShiftConfig};
    let data = bench_dataset(300);
    let mut g = c.benchmark_group("alt_clustering");
    g.sample_size(10);
    g.bench_function("meanshift_n300", |b| {
        let bw = estimate_bandwidth(data.x(), 0.2);
        b.iter(|| {
            mean_shift(
                black_box(data.x()),
                &MeanShiftConfig {
                    bandwidth: bw,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("affinity_propagation_n300", |b| {
        b.iter(|| affinity_propagation(black_box(data.x()), &AffinityConfig::default()))
    });
    g.finish();
}

fn baseline_models(c: &mut Criterion) {
    use hpo_models::estimator::Estimator;
    use hpo_models::knn::KnnClassifier;
    use hpo_models::tree::{DecisionTreeClassifier, TreeParams};
    let data = bench_dataset(1000);
    let mut g = c.benchmark_group("baseline_models");
    g.bench_function("tree_fit_n1000_d8", |b| {
        b.iter(|| {
            let mut t = DecisionTreeClassifier::new(TreeParams::default());
            t.fit(black_box(&data)).expect("fits");
            t
        })
    });
    let mut knn = KnnClassifier::new(5);
    knn.fit(&data).expect("fits");
    g.bench_function("knn_predict_n1000", |b| {
        b.iter(|| black_box(&knn).predict(data.x()))
    });
    g.finish();
}

criterion_group!(
    benches,
    clustering,
    grouping_and_folds,
    mlp_epoch,
    metrics,
    sha_end_to_end,
    observability_overhead,
    alternative_clusterers,
    baseline_models
);
criterion_main!(benches);
