//! House-price regression: the paper's method on a regression task.
//!
//! Uses the `kc-house` catalog stand-in. Regression has no class labels, so
//! Operation 1 bins the numeric targets by magnitude (paper §III-A) before
//! grouping; the score is R². Compares Hyperband with the vanilla and
//! enhanced pipelines.
//!
//! ```text
//! cargo run --release --example house_prices
//! ```

use enhancing_bhpo::core::harness::{run_method, Method};
use enhancing_bhpo::core::hyperband::HyperbandConfig;
use enhancing_bhpo::core::pipeline::Pipeline;
use enhancing_bhpo::core::space::SearchSpace;
use enhancing_bhpo::data::synth::catalog::PaperDataset;
use enhancing_bhpo::models::mlp::MlpParams;
use enhancing_bhpo::sampling::groups::{build_grouping, GroupingConfig};

fn main() {
    let tt = PaperDataset::KcHouse.load(0.2, 11);
    println!(
        "kc-house stand-in: {} train instances, {} features (regression)\n",
        tt.train.n_instances(),
        tt.train.n_features()
    );

    // Peek at what Operation 1 does with binned regression labels.
    let grouping = build_grouping(&tt.train, &GroupingConfig::default());
    println!(
        "Operation 1 on binned targets: {} groups of sizes {:?}, {} label bins\n",
        grouping.n_groups,
        grouping.sizes(),
        grouping.n_label_categories
    );

    let space = SearchSpace::mlp_cv18();
    let base = MlpParams {
        max_iter: 20,
        ..Default::default()
    };
    for pipeline in [Pipeline::vanilla(), Pipeline::enhanced()] {
        let row = run_method(
            &tt.train,
            &tt.test,
            &space,
            pipeline,
            &base,
            &Method::Hyperband(HyperbandConfig::default()),
            11,
        );
        println!(
            "HB[{:<8}]  test R²={:.2}%  search={:.2}s  evals={}  best: {}",
            row.pipeline,
            row.test_score * 100.0,
            row.search_seconds,
            row.n_evaluations,
            row.best_config_desc,
        );
    }
}
