//! Fraud detection: HPO on an extremely imbalanced dataset.
//!
//! Uses the `fraud` catalog stand-in (~1.7% positive class, like the Kaggle
//! credit-card dataset the paper evaluates). The rare-class merge of
//! Operation 1 and the weighted-F1 score kind both activate on this data.
//! Compares random search, SHA/SHA+, and ASHA (4 workers) on weighted F1.
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```

use enhancing_bhpo::core::asha::AshaConfig;
use enhancing_bhpo::core::harness::{run_method, Method};
use enhancing_bhpo::core::pipeline::Pipeline;
use enhancing_bhpo::core::random_search::RandomSearchConfig;
use enhancing_bhpo::core::sha::ShaConfig;
use enhancing_bhpo::core::space::SearchSpace;
use enhancing_bhpo::data::synth::catalog::PaperDataset;
use enhancing_bhpo::models::mlp::MlpParams;

fn main() {
    let tt = PaperDataset::Fraud.load(0.2, 7);
    let counts = tt.train.class_counts();
    println!(
        "fraud stand-in: {} train instances, class balance {:?} ({:.2}% positive)\n",
        tt.train.n_instances(),
        counts,
        100.0 * counts[1] as f64 / tt.train.n_instances() as f64
    );

    let space = SearchSpace::mlp_table3(2); // 18 configs
    let base = MlpParams {
        max_iter: 15,
        ..Default::default()
    };

    let arms: Vec<(Method, Pipeline)> = vec![
        (
            Method::Random(RandomSearchConfig { n_samples: 5 }),
            Pipeline::vanilla(),
        ),
        (Method::Sha(ShaConfig::default()), Pipeline::vanilla()),
        (Method::Sha(ShaConfig::default()), Pipeline::enhanced()),
        (
            Method::Asha(AshaConfig {
                workers: 4,
                n_configs: 18,
                ..Default::default()
            }),
            Pipeline::enhanced(),
        ),
    ];
    for (method, pipeline) in arms {
        let row = run_method(&tt.train, &tt.test, &space, pipeline, &base, &method, 7);
        println!(
            "{:<6} [{:<8}]  test F1={:.2}%  train F1={:.2}%  search={:.2}s  evals={}",
            row.method,
            row.pipeline,
            row.test_score * 100.0,
            row.train_score * 100.0,
            row.search_seconds,
            row.n_evaluations,
        );
    }
    println!("\nnote: the ASHA arm runs the same enhanced pipeline across 4 worker threads.");
}
