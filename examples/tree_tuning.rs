//! Tuning a non-MLP model with the paper's enhanced cross-validation.
//!
//! The optimizers in `hpo_core` are wired to the MLP space the paper uses,
//! but the evaluator's model-agnostic entry point
//! (`CvEvaluator::evaluate_fn`) runs *any* model through Operation 1/2 folds
//! and the Eq. 3 metric. This example grid-searches a decision tree and a
//! random forest that way, at a small budget where the enhanced evaluation
//! is supposed to matter most.
//!
//! ```text
//! cargo run --release --example tree_tuning
//! ```

use enhancing_bhpo::core::evaluator::CvEvaluator;
use enhancing_bhpo::core::pipeline::Pipeline;
use enhancing_bhpo::data::split::stratified_train_test_split;
use enhancing_bhpo::data::synth::{make_classification, ClassificationSpec};
use enhancing_bhpo::models::estimator::Estimator;
use enhancing_bhpo::models::forest::{ForestParams, RandomForestClassifier};
use enhancing_bhpo::models::tree::{DecisionTreeClassifier, TreeParams};
use enhancing_bhpo::models::MlpParams;

fn main() {
    let data = make_classification(
        &ClassificationSpec {
            n_instances: 800,
            n_features: 10,
            n_informative: 8,
            n_classes: 2,
            n_blobs: 4,
            label_noise: 0.08,
            blob_spread: 0.6,
            ..Default::default()
        },
        33,
    );
    let mut rng = enhancing_bhpo::data::rng::rng_from_seed(33);
    let tt = stratified_train_test_split(&data, 0.25, &mut rng).expect("clean split");

    // The evaluator still takes MlpParams as its base (the optimizers need
    // them); evaluate_fn ignores them and drives our own models.
    let evaluator = CvEvaluator::new(&tt.train, Pipeline::enhanced(), MlpParams::default(), 33);
    let budget = tt.train.n_instances() / 5; // 20% subsets: the noisy regime

    println!("grid-searching tree depth × min_samples_split on 20% subsets (Eq. 3 scoring):\n");
    let mut best: Option<(f64, usize, usize)> = None;
    for depth in [2usize, 4, 6, 8, 12] {
        for min_split in [2usize, 8, 32] {
            let outcome =
                evaluator.evaluate_fn(budget, (depth * 100 + min_split) as u64, |_, tr, va| {
                    let mut tree = DecisionTreeClassifier::new(TreeParams {
                        max_depth: depth,
                        min_samples_split: min_split,
                        ..Default::default()
                    });
                    match tree.fit(tr) {
                        Ok(r) => (tree.predict(va.x()), r.cost_units),
                        Err(_) => (Vec::new(), 0),
                    }
                });
            println!(
                "  depth={depth:<2} min_split={min_split:<2}  score={:.4} (µ={:.4} σ={:.4})",
                outcome.score,
                outcome.fold_scores.mean(),
                outcome.fold_scores.std_dev()
            );
            if best.is_none_or(|(s, _, _)| outcome.score > s) {
                best = Some((outcome.score, depth, min_split));
            }
        }
    }
    let (_, depth, min_split) = best.expect("grid evaluated");
    println!("\nselected: depth={depth}, min_samples_split={min_split}");

    // Refit the winner and a forest on the full training data.
    let acc = |t: &[f64], p: &[f64]| {
        t.iter().zip(p).filter(|(a, b)| a == b).count() as f64 / t.len() as f64
    };
    let mut tree = DecisionTreeClassifier::new(TreeParams {
        max_depth: depth,
        min_samples_split: min_split,
        ..Default::default()
    });
    tree.fit(&tt.train).unwrap();
    println!(
        "tuned tree      test acc = {:.3}",
        acc(tt.test.y(), &tree.predict(tt.test.x()))
    );
    let mut forest = RandomForestClassifier::new(ForestParams {
        n_trees: 40,
        tree: TreeParams {
            max_depth: depth,
            min_samples_split: min_split,
            ..Default::default()
        },
        seed: 33,
        ..Default::default()
    });
    forest.fit(&tt.train).unwrap();
    println!(
        "forest (40x)    test acc = {:.3}",
        acc(tt.test.y(), &forest.predict(tt.test.x()))
    );
}
