//! Comparing the three clustering algorithms behind Operation 1.
//!
//! The paper names k-means (its default), mean-shift and affinity
//! propagation as candidates for the grouping step. This example runs all
//! three on the same dataset, reports cluster counts, silhouette scores and
//! the resulting group structure, and shows how the baseline models
//! (decision tree, kNN, logistic regression) compare to a tuned MLP.
//!
//! ```text
//! cargo run --release --example clustering_algorithms
//! ```

use enhancing_bhpo::cluster::silhouette::silhouette_score;
use enhancing_bhpo::data::split::stratified_train_test_split;
use enhancing_bhpo::data::synth::{make_classification, ClassificationSpec};
use enhancing_bhpo::models::estimator::Estimator;
use enhancing_bhpo::models::knn::KnnClassifier;
use enhancing_bhpo::models::linear::LogisticRegression;
use enhancing_bhpo::models::tree::{DecisionTreeClassifier, TreeParams};
use enhancing_bhpo::models::{MlpClassifier, MlpParams};
use enhancing_bhpo::sampling::groups::{build_grouping, ClusterAlgo, GroupingConfig};

fn main() {
    let data = make_classification(
        &ClassificationSpec {
            n_instances: 600,
            n_features: 10,
            n_informative: 8,
            n_classes: 3,
            n_blobs: 6,
            label_purity: 0.9,
            blob_spread: 0.5,
            ..Default::default()
        },
        21,
    );

    println!("Operation 1 with different clustering algorithms (v = 3):\n");
    let algos: [(&str, ClusterAlgo); 3] = [
        ("balanced k-means", ClusterAlgo::BalancedKMeans),
        ("mean-shift", ClusterAlgo::MeanShift { quantile: 0.1 }),
        ("affinity propagation", ClusterAlgo::AffinityPropagation),
    ];
    for (name, algo) in algos {
        let grouping = build_grouping(
            &data,
            &GroupingConfig {
                v: 3,
                algo,
                cluster_sample_cap: 400,
                ..Default::default()
            },
        );
        let silhouette = silhouette_score(data.x(), &grouping.group_of).unwrap_or(f64::NAN);
        println!(
            "  {name:<22} groups={} sizes={:?} silhouette={silhouette:.3}",
            grouping.n_groups,
            grouping.sizes()
        );
    }

    // Baseline model zoo on the same data.
    println!("\nbaseline models (train/test accuracy):");
    let mut rng = enhancing_bhpo::data::rng::rng_from_seed(21);
    let tt = stratified_train_test_split(&data, 0.25, &mut rng).expect("clean split");
    let acc = |t: &[f64], p: &[f64]| {
        t.iter().zip(p).filter(|(a, b)| a == b).count() as f64 / t.len() as f64
    };

    let mut tree = DecisionTreeClassifier::new(TreeParams::default());
    tree.fit(&tt.train).unwrap();
    println!(
        "  decision tree        train={:.3} test={:.3} ({} leaves)",
        acc(tt.train.y(), &tree.predict(tt.train.x())),
        acc(tt.test.y(), &tree.predict(tt.test.x())),
        tree.n_leaves()
    );

    let mut knn = KnnClassifier::new(5);
    knn.fit(&tt.train).unwrap();
    println!(
        "  5-NN                 train={:.3} test={:.3}",
        acc(tt.train.y(), &knn.predict(tt.train.x())),
        acc(tt.test.y(), &knn.predict(tt.test.x()))
    );

    let mut logreg = LogisticRegression::new();
    logreg.fit(&tt.train).unwrap();
    println!(
        "  logistic regression  train={:.3} test={:.3}",
        acc(tt.train.y(), &logreg.predict(tt.train.x())),
        acc(tt.test.y(), &logreg.predict(tt.test.x()))
    );

    let mut mlp = MlpClassifier::new(MlpParams {
        hidden_layer_sizes: vec![32],
        learning_rate_init: 0.01,
        max_iter: 60,
        ..Default::default()
    });
    mlp.fit(&tt.train).unwrap();
    println!(
        "  MLP [32]             train={:.3} test={:.3}",
        acc(tt.train.y(), &mlp.predict(tt.train.x())),
        acc(tt.test.y(), &mlp.predict(tt.test.x()))
    );
}
