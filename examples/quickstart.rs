//! Quickstart: enhanced vs vanilla Successive Halving in ~40 lines.
//!
//! Generates a synthetic binary-classification dataset with latent group
//! structure, runs `SHA` (vanilla pipeline) and `SHA+` (the paper's enhanced
//! pipeline) over an 18-configuration MLP space, and prints both rows.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use enhancing_bhpo::core::harness::{run_method, Method};
use enhancing_bhpo::core::pipeline::Pipeline;
use enhancing_bhpo::core::sha::ShaConfig;
use enhancing_bhpo::core::space::SearchSpace;
use enhancing_bhpo::data::split::stratified_train_test_split;
use enhancing_bhpo::data::synth::{make_classification, ClassificationSpec};
use enhancing_bhpo::models::mlp::MlpParams;

fn main() {
    // A dataset whose feature blobs correlate with (but don't equal) the
    // labels — the structure the paper's grouping step exploits.
    let data = make_classification(
        &ClassificationSpec {
            n_instances: 1200,
            n_features: 12,
            n_informative: 8,
            n_classes: 2,
            n_blobs: 4,
            label_purity: 0.85,
            label_noise: 0.05,
            ..Default::default()
        },
        42,
    );
    let mut rng = enhancing_bhpo::data::rng::rng_from_seed(42);
    let tt = stratified_train_test_split(&data, 0.2, &mut rng).expect("clean split");

    // 18 configurations: hidden layer sizes × activation (paper §IV-C).
    let space = SearchSpace::mlp_cv18();
    let base = MlpParams {
        max_iter: 20,
        ..Default::default()
    };

    println!(
        "searching {} configurations with Successive Halving...\n",
        space.n_configurations()
    );
    for pipeline in [Pipeline::vanilla(), Pipeline::enhanced()] {
        let row = run_method(
            &tt.train,
            &tt.test,
            &space,
            pipeline,
            &base,
            &Method::Sha(ShaConfig::default()),
            42,
        );
        println!(
            "SHA[{:<8}]  test {}={:.2}%  search={:.2}s  evals={}  best: {}",
            row.pipeline,
            row.score_kind,
            row.test_score * 100.0,
            row.search_seconds,
            row.n_evaluations,
            row.best_config_desc,
        );
    }
}
