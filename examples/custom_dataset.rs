//! Bringing your own data: LibSVM/CSV loading, scaling, and a method sweep.
//!
//! The catalog stand-ins drive the experiments, but real datasets plug in
//! through `hpo_data::io`. This example writes a small LibSVM file to a temp
//! directory, loads it back, standardizes features on the training split
//! only, and runs BOHB with both pipelines.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```

use enhancing_bhpo::core::bohb::BohbConfig;
use enhancing_bhpo::core::harness::{run_method, Method};
use enhancing_bhpo::core::pipeline::Pipeline;
use enhancing_bhpo::core::space::SearchSpace;
use enhancing_bhpo::data::io::{read_libsvm_file, write_libsvm};
use enhancing_bhpo::data::scale::StandardScaler;
use enhancing_bhpo::data::split::stratified_train_test_split;
use enhancing_bhpo::data::synth::{make_classification, ClassificationSpec};
use enhancing_bhpo::data::Dataset;
use enhancing_bhpo::models::mlp::MlpParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stand-in for "your data": write a LibSVM file to disk...
    let original = make_classification(
        &ClassificationSpec {
            n_instances: 800,
            n_features: 10,
            n_informative: 7,
            ..Default::default()
        },
        3,
    );
    let path = std::env::temp_dir().join("enhancing_bhpo_custom.libsvm");
    let file = std::fs::File::create(&path)?;
    write_libsvm(&original, file)?;
    println!(
        "wrote {} instances to {}",
        original.n_instances(),
        path.display()
    );

    // ...and load it back the way a user would.
    let data = read_libsvm_file(&path, true)?;
    println!(
        "loaded: {} instances, {} features, task {:?}",
        data.n_instances(),
        data.n_features(),
        data.task()
    );

    let mut rng = enhancing_bhpo::data::rng::rng_from_seed(3);
    let tt = stratified_train_test_split(&data, 0.2, &mut rng)?;

    // Fit the scaler on train only, apply to both (no leakage).
    let scaler = StandardScaler::fit(tt.train.x());
    let train = Dataset::new(
        scaler.transform(tt.train.x()),
        tt.train.y().to_vec(),
        tt.train.task(),
    )?;
    let test = Dataset::new(
        scaler.transform(tt.test.x()),
        tt.test.y().to_vec(),
        tt.test.task(),
    )?;

    let space = SearchSpace::mlp_cv18();
    let base = MlpParams {
        max_iter: 15,
        ..Default::default()
    };
    for pipeline in [Pipeline::vanilla(), Pipeline::enhanced()] {
        let row = run_method(
            &train,
            &test,
            &space,
            pipeline,
            &base,
            &Method::Bohb(BohbConfig::default()),
            3,
        );
        println!(
            "BOHB[{:<8}]  test acc={:.2}%  search={:.2}s  evals={}",
            row.pipeline,
            row.test_score * 100.0,
            row.search_seconds,
            row.n_evaluations,
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
