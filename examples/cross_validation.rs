//! Using the sampling machinery directly: groups, folds and the Eq. 3 score.
//!
//! Shows the lower-level API beneath the optimizers — useful when you want
//! the paper's improved cross-validation on its own (the paper's §IV-C
//! use case), without any bandit search on top.
//!
//! ```text
//! cargo run --release --example cross_validation
//! ```

use enhancing_bhpo::data::synth::{make_classification, ClassificationSpec};
use enhancing_bhpo::metrics::score::beta_weight;
use enhancing_bhpo::metrics::{EvalMetric, FoldScores};
use enhancing_bhpo::sampling::folds::{gen_folds, GenFoldsConfig};
use enhancing_bhpo::sampling::groups::{build_grouping, GroupingConfig};

fn main() {
    let data = make_classification(
        &ClassificationSpec {
            n_instances: 600,
            n_features: 8,
            n_informative: 8,
            n_classes: 3,
            n_blobs: 3,
            ..Default::default()
        },
        5,
    );

    // Operation 1: cluster features (balanced k-means), categorize labels,
    // and merge into groups.
    let grouping = build_grouping(
        &data,
        &GroupingConfig {
            v: 3,
            r_group: 0.8,
            ..Default::default()
        },
    );
    println!("Operation 1 groups: sizes {:?}\n", grouping.sizes());

    // Operation 2: 3 general + 2 special folds over a 150-instance budget.
    let mut rng = enhancing_bhpo::data::rng::rng_from_seed(5);
    let cfg = GenFoldsConfig {
        k_gen: 3,
        k_spe: 2,
        special_own_frac: 0.8,
    };
    let folds = gen_folds(&grouping, 150, &cfg, &mut rng);
    println!("Operation 2 folds over a 150-instance budget (25% of the data):");
    for (i, fold) in folds.iter().enumerate() {
        let mut per_group = vec![0usize; grouping.n_groups];
        for &idx in fold {
            per_group[grouping.group_of[idx]] += 1;
        }
        let kind = if i < cfg.k_gen { "general" } else { "special" };
        println!(
            "  fold {i} ({kind:<7}): {} instances, group mix {per_group:?}",
            fold.len()
        );
    }

    // Eq. 3 scoring: the same fold results, weighed differently by subset size.
    println!("\nEq. 3 score for fold accuracies [0.70, 0.80, 0.90, 0.75, 0.85]:");
    let metric = EvalMetric::paper_default();
    for gamma in [5.0, 25.0, 50.0, 100.0] {
        let fs = FoldScores::new(vec![0.70, 0.80, 0.90, 0.75, 0.85], gamma);
        println!(
            "  γ={gamma:>5.1}%  β(γ)={:>6.3}  score={:.4}  (mean={:.4}, σ={:.4})",
            beta_weight(gamma, 10.0),
            fs.score(&metric),
            fs.mean(),
            fs.std_dev()
        );
    }
    println!(
        "\nsmall subsets weigh the variance bonus heavily; at 100% the score is the plain mean."
    );
}
