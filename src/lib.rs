//! Umbrella crate for the Enhancing-BHPO reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use enhancing_bhpo::...`. See the individual crates
//! for the real APIs:
//!
//! * [`data`] — datasets, synthetic catalog, splits, IO.
//! * [`cluster`] — k-means and balanced re-clustering.
//! * [`models`] — the MLP and linear models being tuned.
//! * [`sampling`] — instance grouping and general/special folds.
//! * [`metrics`] — accuracy/F1/R², nDCG, and the paper's evaluation score.
//! * [`core`] — bandit-based optimizers (SHA/HB/BOHB/ASHA/PASHA/DEHB) and
//!   their enhanced variants.
//!
//! ```
//! use enhancing_bhpo::core::harness::{run_method, Method};
//! use enhancing_bhpo::core::pipeline::Pipeline;
//! use enhancing_bhpo::core::sha::ShaConfig;
//! use enhancing_bhpo::core::space::SearchSpace;
//! use enhancing_bhpo::data::synth::catalog::PaperDataset;
//! use enhancing_bhpo::models::mlp::MlpParams;
//!
//! let tt = PaperDataset::Australian.load(0.2, 42);
//! let space = SearchSpace::mlp_cv18();
//! let base = MlpParams { max_iter: 3, ..Default::default() };
//! let row = run_method(
//!     &tt.train, &tt.test, &space,
//!     Pipeline::enhanced(), &base,
//!     &Method::Sha(ShaConfig::default()), 42,
//! );
//! assert!(row.test_score.is_finite());
//! ```

#![warn(missing_docs)]

pub use hpo_cluster as cluster;
pub use hpo_core as core;
pub use hpo_data as data;
pub use hpo_metrics as metrics;
pub use hpo_models as models;
pub use hpo_sampling as sampling;
