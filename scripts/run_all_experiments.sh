#!/usr/bin/env bash
# Regenerates every table/figure of the paper into results/ and refreshes
# EXPERIMENTS.md. Laptop-sized by default; pass REPEATS/SCALE to override:
#
#   REPEATS=5 SCALE=1.0 bash scripts/run_all_experiments.sh
set -euo pipefail
cd "$(dirname "$0")/.."

REPEATS="${REPEATS:-4}"
SCALE="${SCALE:-1.0}"
BIG_SCALE="${BIG_SCALE:-0.3}"   # a9a / fraud are large; keep their slice smaller
mkdir -p results

run() { cargo run --release -p hpo-bench --bin "$@"; }

run exp_fig1_sha_schedule                    > results/fig1.txt 2>&1
run exp_fig3_beta_curve                      > results/fig3.txt 2>&1
run exp_prop1_stability                      > results/prop1.txt 2>&1
run exp_table4_hpo_comparison -- --datasets australian,satimage,kc-house \
    --repeats "$REPEATS" --scale "$SCALE" --max-iter 15        > results/table4a.txt 2>&1
run exp_table4_hpo_comparison -- --datasets a9a,fraud \
    --repeats "$REPEATS" --scale "$BIG_SCALE" --max-iter 15    > results/table4b.txt 2>&1
run exp_fig5_cv_methods -- --datasets australian,satimage \
    --repeats "$REPEATS" --scale "$SCALE" --max-iter 20        > results/fig5.txt 2>&1
run exp_table5_grouping_ablation -- --datasets australian,splice,satimage \
    --repeats "$REPEATS" --scale "$SCALE" --max-iter 20        > results/table5.txt 2>&1
run exp_fig6_fold_allocation -- --datasets australian,satimage \
    --repeats "$REPEATS" --scale "$SCALE" --max-iter 20        > results/fig6.txt 2>&1
run exp_fig7_metric_ablation -- --datasets australian \
    --repeats "$REPEATS" --scale "$SCALE" --max-iter 20        > results/fig7.txt 2>&1
run exp_fig4_config_scaling -- --repeats 3 --max-hps 6 --max-layers 3 \
                                                               > results/fig4.txt 2>&1
run exp_extension_methods -- --datasets australian --repeats 3 --scale "$SCALE" \
                                                               > results/extensions.txt 2>&1
run bench_hpo -- --datasets australian --scale "$SCALE" \
    --out results/BENCH_hpo.json                               > results/bench_hpo.txt 2>&1

python3 scripts/fill_experiments.py
echo "all experiments recorded in results/ and EXPERIMENTS.md"
