#!/usr/bin/env python3
"""Fills EXPERIMENTS.md placeholders from results/*.txt.

Each `<!-- X_RESULTS -->` marker is replaced by the cleaned output of the
corresponding experiment binary (cargo noise stripped), fenced as text.
Re-runnable: the fill is idempotent because markers are kept on their own
line above the fenced block.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"

MARKERS = {
    "TABLE4_RESULTS": ["table4a.txt", "table4b.txt", "table4c.txt"],
    "FIG4_RESULTS": ["fig4.txt"],
    "FIG5_RESULTS": ["fig5.txt"],
    "TABLE5_RESULTS": ["table5.txt"],
    "FIG6_RESULTS": ["fig6.txt"],
    "FIG7_RESULTS": ["fig7.txt"],
    "EXT_RESULTS": ["extensions.txt"],
}

NOISE = re.compile(
    r"^(WARNING conda|\s*(Compiling|Finished|Running|Downloaded|warning|note|-->|\||=)\b|warning:)"
)


def clean(path: Path) -> str:
    if not path.exists():
        return f"(missing: {path.name})"
    lines = []
    for line in path.read_text().splitlines():
        if NOISE.match(line):
            continue
        lines.append(line.rstrip())
    # collapse leading/trailing blank runs
    while lines and not lines[0]:
        lines.pop(0)
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)


def main() -> int:
    exp = ROOT / "EXPERIMENTS.md"
    text = exp.read_text()
    for marker, files in MARKERS.items():
        body = "\n\n".join(clean(RESULTS / f) for f in files)
        block = f"<!-- {marker} -->\n\n```text\n{body}\n```\n"
        pattern = re.compile(
            rf"<!-- {marker} -->\n(?:\n```text\n.*?\n```\n)?", re.DOTALL
        )
        if not pattern.search(text):
            print(f"marker {marker} not found", file=sys.stderr)
            return 1
        text = pattern.sub(block, text, count=1)
    exp.write_text(text)
    print("EXPERIMENTS.md updated")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
